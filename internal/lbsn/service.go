package lbsn

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"locheat/internal/cheatercode"
	"locheat/internal/geo"
	"locheat/internal/simclock"
)

// Errors callers can match with errors.Is.
var (
	ErrUserNotFound  = errors.New("lbsn: user not found")
	ErrVenueNotFound = errors.New("lbsn: venue not found")
	ErrBadLocation   = errors.New("lbsn: invalid coordinates")
)

// Config carries the service's tunable policy knobs. The defaults
// reproduce the behaviours the paper observed on the live service.
type Config struct {
	// GPSVerifyRadiusMeters is the maximum distance between the venue
	// being claimed and the coordinates the device reports ("if a user
	// claims that he/she is currently in a location far away from the
	// location reported by the GPS of his/her phone, this check-in will
	// be considered invalid", §2.3). Default 500 m.
	GPSVerifyRadiusMeters float64
	// MayorWindowDays is the mayorship competition window (paper: 60).
	MayorWindowDays int
	// RecentVisitorCap bounds the venue "Who's been here" list
	// (default 10).
	RecentVisitorCap int
	// Points awarded per valid check-in, extra for a first venue
	// visit, and extra for winning a mayorship.
	PointsBase       int
	PointsFirstVenue int
	PointsMayor      int
	// Cheater configures the rules engine; used only when no explicit
	// detector is supplied to New.
	Cheater cheatercode.Config
	// VenueIndexCellDeg is the spatial-index cell size (default 0.01°).
	VenueIndexCellDeg float64
}

// DefaultConfig returns the paper-faithful policy.
func DefaultConfig() Config {
	return Config{
		GPSVerifyRadiusMeters: 500,
		MayorWindowDays:       60,
		RecentVisitorCap:      10,
		PointsBase:            1,
		PointsFirstVenue:      2,
		PointsMayor:           5,
		Cheater:               cheatercode.DefaultConfig(),
		VenueIndexCellDeg:     0.01,
	}
}

// Service is the LBSN server. It is safe for concurrent use.
type Service struct {
	mu       sync.RWMutex
	clock    simclock.Clock
	cfg      Config
	detector *cheatercode.Detector
	badges   []BadgeSpec

	observer CheckinObserver

	users  map[UserID]*User
	venues map[VenueID]*Venue
	states map[UserID]*userState
	mayors *mayorTracker
	index  *geo.GridIndex

	// seenVisitors tracks distinct visitors per venue for the
	// UniqueVisitors counter on pipeline-driven venues.
	seenVisitors map[VenueID]map[UserID]struct{}
	mayorCounts  map[UserID]int

	// quarantined holds the §2.3 access-control state fed back from
	// detection (see quarantine.go); expired entries are reaped lazily.
	quarantined         map[UserID]quarantineEntry
	quarantinesIssued   int
	quarantinesReleased int
	quarantineDenied    int
	// onQuarantineChange fires (outside the lock) after the quarantine
	// set changes; the daemon hooks snapshot persistence here.
	// quarChangeListeners receive the per-transition detail the cluster
	// broadcast tier needs (see quarantine.go).
	onQuarantineChange  func()
	quarChangeListeners []func(QuarantineChange)

	nextUser  UserID
	nextVenue VenueID

	totalCheckins   int
	deniedCheckins  int
	specialsRedeems int
}

// New creates a service. A nil detector builds one from cfg.Cheater; a
// nil clock uses the wall clock. Zero-valued config fields take their
// defaults.
func New(cfg Config, clock simclock.Clock, detector *cheatercode.Detector) *Service {
	def := DefaultConfig()
	if cfg.GPSVerifyRadiusMeters <= 0 {
		cfg.GPSVerifyRadiusMeters = def.GPSVerifyRadiusMeters
	}
	if cfg.MayorWindowDays <= 0 {
		cfg.MayorWindowDays = def.MayorWindowDays
	}
	if cfg.RecentVisitorCap <= 0 {
		cfg.RecentVisitorCap = def.RecentVisitorCap
	}
	if cfg.PointsBase <= 0 {
		cfg.PointsBase = def.PointsBase
	}
	if cfg.VenueIndexCellDeg <= 0 {
		cfg.VenueIndexCellDeg = def.VenueIndexCellDeg
	}
	if cfg.Cheater.RapidFireCount == 0 {
		cfg.Cheater = def.Cheater
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	if detector == nil {
		detector = cheatercode.NewDetector(cfg.Cheater)
	}
	return &Service{
		clock:        clock,
		cfg:          cfg,
		detector:     detector,
		badges:       DefaultBadges(),
		users:        make(map[UserID]*User),
		venues:       make(map[VenueID]*Venue),
		states:       make(map[UserID]*userState),
		mayors:       newMayorTracker(cfg.MayorWindowDays),
		index:        geo.NewGridIndex(cfg.VenueIndexCellDeg),
		seenVisitors: make(map[VenueID]map[UserID]struct{}),
		mayorCounts:  make(map[UserID]int),
		quarantined:  make(map[UserID]quarantineEntry),
	}
}

// Clock exposes the service's time source (experiments advance it).
func (s *Service) Clock() simclock.Clock { return s.clock }

// RegisterUser creates a user and returns its incrementing ID.
func (s *Service) RegisterUser(name, username, homeCity string) UserID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextUser++
	id := s.nextUser
	s.users[id] = &User{
		ID:        id,
		Name:      name,
		Username:  username,
		HomeCity:  homeCity,
		CreatedAt: s.clock.Now(),
		Badges:    make(map[string]struct{}),
	}
	return id
}

// AddVenue registers a venue and returns its incrementing ID.
func (s *Service) AddVenue(name, address, city string, loc geo.Point, special *Special) (VenueID, error) {
	if !loc.Valid() {
		return 0, fmt.Errorf("add venue %q: %w", name, ErrBadLocation)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextVenue++
	id := s.nextVenue
	var sp *Special
	if special != nil {
		cp := *special
		sp = &cp
	}
	s.venues[id] = &Venue{
		ID:       id,
		Name:     name,
		Address:  address,
		City:     city,
		Location: loc,
		Special:  sp,
	}
	s.index.Insert(uint64(id), loc)
	return id, nil
}

// SetFriendCount sets a user's friend count (profile decoration).
func (s *Service) SetFriendCount(id UserID, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[id]
	if !ok {
		return fmt.Errorf("user %d: %w", id, ErrUserNotFound)
	}
	u.FriendCount = n
	return nil
}

// CheckIn runs the full server-side pipeline: GPS verification,
// cheater-code rules, then rewards. Denied check-ins still increment
// the user's total check-in count (§4.3) but earn nothing.
func (s *Service) CheckIn(req CheckinRequest) (CheckinResult, error) {
	if !req.Reported.Valid() {
		return CheckinResult{}, fmt.Errorf("check-in by user %d: %w", req.UserID, ErrBadLocation)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	user, ok := s.users[req.UserID]
	if !ok {
		return CheckinResult{}, fmt.Errorf("check-in: user %d: %w", req.UserID, ErrUserNotFound)
	}
	venue, ok := s.venues[req.VenueID]
	if !ok {
		return CheckinResult{}, fmt.Errorf("check-in: venue %d: %w", req.VenueID, ErrVenueNotFound)
	}

	now := s.clock.Now()
	user.TotalCheckins++
	s.totalCheckins++
	res := CheckinResult{At: now}

	// Location verification: the reported GPS must place the device at
	// the claimed venue.
	if d := req.Reported.DistanceMeters(venue.Location); d > s.cfg.GPSVerifyRadiusMeters {
		s.deniedCheckins++
		res.Reason = DenyGPSMismatch
		res.Detail = fmt.Sprintf("reported GPS %.0f m from venue, limit %.0f m",
			d, s.cfg.GPSVerifyRadiusMeters)
		s.emit(req, venue.Location, now, res)
		return res, nil
	}

	// Access control (§2.3): a quarantined user's claims are refused —
	// no rules, no rewards. Deliberately AFTER GPS verification: the
	// stream detectors treat every non-GPS-denied event as having
	// venue-tied coordinates, so the gate must not short-circuit that
	// check. The attempt still counts (§4.3) and is still published to
	// observers, so the evidence stream keeps flowing.
	if detail, deny := s.checkQuarantine(req.UserID, now); deny {
		s.deniedCheckins++
		s.quarantineDenied++
		res.Reason = DenyQuarantined
		res.Detail = detail
		s.emit(req, venue.Location, now, res)
		return res, nil
	}

	// Cheater code: rules operate on the venue location, since GPS
	// verification has already tied the device to it.
	obs := cheatercode.Observation{
		UserID:   uint64(req.UserID),
		VenueID:  uint64(req.VenueID),
		At:       now,
		Location: venue.Location,
	}
	if v := s.detector.Check(obs); v != nil {
		s.deniedCheckins++
		res.Reason = DenyReason(v.Rule)
		res.Detail = v.Detail
		s.emit(req, venue.Location, now, res)
		return res, nil
	}

	// Valid check-in: rewards.
	res.Accepted = true
	user.ValidCheckins++

	state := s.states[req.UserID]
	if state == nil {
		state = newUserState()
		s.states[req.UserID] = state
	}
	firstVisit := false
	if _, seen := state.distinctVenues[req.VenueID]; !seen {
		firstVisit = true
	}
	state.observe(req.VenueID, now)

	points := s.cfg.PointsBase
	if firstVisit {
		points += s.cfg.PointsFirstVenue
	}

	// Venue counters and recent-visitor list.
	venue.CheckinsHere++
	visitors := s.seenVisitors[req.VenueID]
	if visitors == nil {
		visitors = make(map[UserID]struct{})
		s.seenVisitors[req.VenueID] = visitors
	}
	if _, seen := visitors[req.UserID]; !seen {
		visitors[req.UserID] = struct{}{}
		venue.UniqueVisitors++
	}
	venue.noteVisitor(req.UserID, s.cfg.RecentVisitorCap)

	// Mayorship: record the day, then compare against the field.
	s.mayors.record(req.VenueID, req.UserID, now)
	leader, _ := s.mayors.leader(req.VenueID, venue.MayorID, now)
	if leader != 0 && leader != venue.MayorID {
		if venue.MayorID != 0 {
			s.mayorCounts[venue.MayorID]--
			res.LostMayorTo = leader
		}
		venue.MayorID = leader
		s.mayorCounts[leader]++
		if leader == req.UserID {
			res.BecameMayor = true
			points += s.cfg.PointsMayor
		}
	}

	// Specials: redeemable on a valid check-in if unrestricted, or if
	// the checking user holds the mayorship.
	if venue.Special != nil {
		if !venue.Special.MayorOnly || venue.MayorID == req.UserID {
			res.SpecialUnlocked = venue.Special.Description
			s.specialsRedeems++
		}
	}

	// Badges.
	for _, b := range s.badges {
		if _, has := user.Badges[b.Name]; has {
			continue
		}
		if b.Earned(state, now) {
			user.Badges[b.Name] = struct{}{}
			res.NewBadges = append(res.NewBadges, b.Name)
		}
	}

	user.Points += points
	res.PointsEarned = points
	s.emit(req, venue.Location, now, res)
	return res, nil
}

// User returns the public snapshot of a user.
func (s *Service) User(id UserID) (UserView, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	u, ok := s.users[id]
	if !ok {
		return UserView{}, false
	}
	return u.view(), true
}

// UserByUsername resolves the /user/<name> URL scheme; only a minority
// of users have usernames.
func (s *Service) UserByUsername(username string) (UserView, bool) {
	if username == "" {
		return UserView{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, u := range s.users {
		if u.Username == username {
			return u.view(), true
		}
	}
	return UserView{}, false
}

// Venue returns the public snapshot of a venue.
func (s *Service) Venue(id VenueID) (VenueView, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.venues[id]
	if !ok {
		return VenueView{}, false
	}
	return v.view(), true
}

// Mayor returns the venue's current mayor (0 = none).
func (s *Service) Mayor(id VenueID) UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v, ok := s.venues[id]; ok {
		return v.MayorID
	}
	return 0
}

// MayorshipsOf returns how many venues the user is currently mayor of.
func (s *Service) MayorshipsOf(id UserID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mayorCounts[id]
}

// Counters -------------------------------------------------------------

// UserCount returns the number of registered users.
func (s *Service) UserCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.users)
}

// VenueCount returns the number of registered venues.
func (s *Service) VenueCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.venues)
}

// MaxUserID returns the highest assigned user ID; IDs are dense from 1.
func (s *Service) MaxUserID() UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextUser
}

// MaxVenueID returns the highest assigned venue ID.
func (s *Service) MaxVenueID() VenueID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextVenue
}

// Stats returns pipeline counters: total check-ins processed, denied
// check-ins, and special redemptions.
func (s *Service) Stats() (total, denied, redeems int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.totalCheckins, s.deniedCheckins, s.specialsRedeems
}

// Geographic queries ----------------------------------------------------

// NearestVenue returns the venue closest to p, as the client app's
// venue list is ordered.
func (s *Service) NearestVenue(p geo.Point) (VenueView, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, _, _, ok := s.index.Nearest(p)
	if !ok {
		return VenueView{}, false
	}
	v, ok := s.venues[VenueID(id)]
	if !ok {
		return VenueView{}, false
	}
	return v.view(), true
}

// NearbyVenues returns venues within radiusMeters of p, closest first,
// at most limit (0 = no limit). This is the "suggested list of nearby
// venues" the client application shows.
func (s *Service) NearbyVenues(p geo.Point, radiusMeters float64, limit int) []VenueView {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.index.WithinRadius(p, radiusMeters)
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]VenueView, 0, len(ids))
	for _, id := range ids {
		if v, ok := s.venues[VenueID(id)]; ok {
			out = append(out, v.view())
		}
	}
	return out
}

// SearchVenues returns venues whose name contains the query,
// case-insensitively, ordered by ID, at most limit (0 = no limit).
// This is the client app's "searching for a venue by name".
func (s *Service) SearchVenues(query string, limit int) []VenueView {
	q := strings.ToLower(query)
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]VenueID, 0, 16)
	for id, v := range s.venues {
		if strings.Contains(strings.ToLower(v.Name), q) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]VenueView, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.venues[id].view())
	}
	return out
}

// Bulk loading (synthetic world) ----------------------------------------

// UserSeed pre-populates a user with already-accumulated totals; used
// by the synthetic world generator, which models the 2010 population
// without replaying 20 M check-ins through the pipeline.
type UserSeed struct {
	Name          string
	Username      string
	HomeCity      string
	CreatedAt     time.Time
	TotalCheckins int
	ValidCheckins int
	Points        int
	BadgeCount    int
	FriendCount   int
}

// VenueSeed pre-populates a venue with counters, mayor and recent
// visitors.
type VenueSeed struct {
	Name           string
	Address        string
	City           string
	Location       geo.Point
	Special        *Special
	CheckinsHere   int
	UniqueVisitors int
	MayorID        UserID
	RecentVisitors []UserID
}

// BulkLoadUsers inserts seeds and returns their assigned IDs, in
// order. Badge counts are materialized as synthetic badge names so the
// profile page's badge count renders correctly.
func (s *Service) BulkLoadUsers(seeds []UserSeed) []UserID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]UserID, len(seeds))
	for i, seed := range seeds {
		s.nextUser++
		id := s.nextUser
		badges := make(map[string]struct{}, seed.BadgeCount)
		for b := 0; b < seed.BadgeCount; b++ {
			badges[fmt.Sprintf("badge-%d", b+1)] = struct{}{}
		}
		s.users[id] = &User{
			ID:            id,
			Name:          seed.Name,
			Username:      seed.Username,
			HomeCity:      seed.HomeCity,
			CreatedAt:     seed.CreatedAt,
			TotalCheckins: seed.TotalCheckins,
			ValidCheckins: seed.ValidCheckins,
			Points:        seed.Points,
			Badges:        badges,
			FriendCount:   seed.FriendCount,
		}
		ids[i] = id
	}
	return ids
}

// BulkLoadVenues inserts seeds and returns their assigned IDs, in
// order. Mayor counts are updated from the seeds' MayorID fields.
func (s *Service) BulkLoadVenues(seeds []VenueSeed) []VenueID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]VenueID, len(seeds))
	for i, seed := range seeds {
		s.nextVenue++
		id := s.nextVenue
		var sp *Special
		if seed.Special != nil {
			cp := *seed.Special
			sp = &cp
		}
		visitors := make([]UserID, len(seed.RecentVisitors))
		copy(visitors, seed.RecentVisitors)
		s.venues[id] = &Venue{
			ID:             id,
			Name:           seed.Name,
			Address:        seed.Address,
			City:           seed.City,
			Location:       seed.Location,
			Special:        sp,
			MayorID:        seed.MayorID,
			CheckinsHere:   seed.CheckinsHere,
			UniqueVisitors: seed.UniqueVisitors,
			recentVisitors: visitors,
		}
		if seed.MayorID != 0 {
			s.mayorCounts[seed.MayorID]++
		}
		s.index.Insert(uint64(id), seed.Location)
		ids[i] = id
	}
	return ids
}
