package lbsn

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"locheat/internal/geo"
	"locheat/internal/simclock"
)

// Property-based tests over random check-in workloads: whatever the
// sequence of users, venues, spoofed coordinates and time gaps, the
// service invariants must hold.

// randomWorkload drives nOps random check-ins and returns the service.
func randomWorkload(seed int64, nOps int, cap int) (*Service, []VenueID, []UserID) {
	rng := rand.New(rand.NewSource(seed))
	clock := simclock.NewSimulated(simclock.Epoch())
	cfg := DefaultConfig()
	cfg.RecentVisitorCap = cap
	s := New(cfg, clock, nil)

	base := geo.Point{Lat: 35.08, Lon: -106.62}
	var venues []VenueID
	for i := 0; i < 12; i++ {
		loc := base.Destination(float64(i*30), float64(200+i*700))
		id, err := s.AddVenue("V", "", "Albuquerque", loc, nil)
		if err != nil {
			panic(err)
		}
		venues = append(venues, id)
	}
	var users []UserID
	for i := 0; i < 6; i++ {
		users = append(users, s.RegisterUser("U", "", "Albuquerque"))
	}
	for op := 0; op < nOps; op++ {
		u := users[rng.Intn(len(users))]
		v := venues[rng.Intn(len(venues))]
		view, _ := s.Venue(v)
		reported := view.Location
		if rng.Float64() < 0.2 {
			// Sometimes report a bogus position (honest remote user).
			reported = view.Location.Destination(rng.Float64()*360, 1000+rng.Float64()*1e6)
		}
		_, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: reported})
		if err != nil {
			panic(err)
		}
		clock.Advance(time.Duration(rng.Intn(120)) * time.Minute)
	}
	return s, venues, users
}

func TestQuickRecentListInvariants(t *testing.T) {
	f := func(seed int64) bool {
		const cap = 5
		s, venues, _ := randomWorkload(seed, 300, cap)
		for _, v := range venues {
			view, _ := s.Venue(v)
			if len(view.RecentVisitors) > cap {
				return false
			}
			seen := make(map[UserID]struct{}, len(view.RecentVisitors))
			for _, u := range view.RecentVisitors {
				if _, dup := seen[u]; dup {
					return false // duplicates forbidden
				}
				seen[u] = struct{}{}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestQuickCounterInvariants(t *testing.T) {
	f := func(seed int64) bool {
		s, venues, users := randomWorkload(seed, 300, 10)
		// Venue counters: CheckinsHere >= UniqueVisitors >= |recent|.
		sumVenue := 0
		for _, v := range venues {
			view, _ := s.Venue(v)
			if view.CheckinsHere < view.UniqueVisitors {
				return false
			}
			if view.UniqueVisitors < len(view.RecentVisitors) {
				return false
			}
			sumVenue += view.CheckinsHere
		}
		// User totals: total >= accepted check-ins; service stats add up.
		total, denied, _ := s.Stats()
		sumUser := 0
		for _, u := range users {
			uv, _ := s.User(u)
			if uv.TotalCheckins < 0 || uv.Points < 0 {
				return false
			}
			sumUser += uv.TotalCheckins
		}
		if sumUser != total {
			return false // every processed check-in counted exactly once
		}
		// Accepted check-ins all landed on venues.
		if sumVenue != total-denied {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestQuickMayorshipConservation(t *testing.T) {
	f := func(seed int64) bool {
		s, venues, users := randomWorkload(seed, 300, 10)
		// Sum of per-user mayor counts equals number of mayored venues,
		// and each venue's mayor is a real user.
		mayored := 0
		for _, v := range venues {
			m := s.Mayor(v)
			if m != 0 {
				mayored++
				if _, ok := s.User(m); !ok {
					return false
				}
			}
		}
		sum := 0
		for _, u := range users {
			n := s.MayorshipsOf(u)
			if n < 0 {
				return false
			}
			sum += n
		}
		return sum == mayored
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeniedEarnNothing(t *testing.T) {
	// Direct property on the pipeline: any check-in result is either
	// accepted, or carries a reason and zero rewards.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clock := simclock.NewSimulated(simclock.Epoch())
		s := New(DefaultConfig(), clock, nil)
		loc := geo.Point{Lat: 35.08, Lon: -106.62}
		v, err := s.AddVenue("V", "", "", loc, nil)
		if err != nil {
			return false
		}
		u := s.RegisterUser("U", "", "")
		for i := 0; i < 50; i++ {
			rep := loc
			if rng.Float64() < 0.5 {
				rep = loc.Destination(rng.Float64()*360, rng.Float64()*1e6)
			}
			res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: rep})
			if err != nil {
				return false
			}
			if !res.Accepted {
				if res.Reason == DenyNone || res.PointsEarned != 0 ||
					len(res.NewBadges) != 0 || res.BecameMayor || res.SpecialUnlocked != "" {
					return false
				}
			}
			clock.Advance(time.Duration(rng.Intn(180)) * time.Minute)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
