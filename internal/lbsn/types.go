// Package lbsn implements the location-based social network service
// the paper attacks: a Foursquare-like system with users, venues, a
// check-in pipeline, and the four-tier progressive reward mechanism of
// §2.1 (points, badges, 60-day day-counted mayorships, and partner
// "specials" that stand in for real-world rewards). Users and venues
// get incrementing numeric IDs, the weakness §3.2 exploits for
// crawling.
//
// The service enforces GPS verification (the claimed venue must match
// the coordinates the device reports) and consults the cheater-code
// detector on every check-in. Per §4.3, check-ins denied by either
// mechanism still count toward the user's total check-in number but
// earn no rewards.
package lbsn

import (
	"time"

	"locheat/internal/geo"
	"locheat/internal/trace"
)

// UserID identifies a user. IDs are assigned incrementally starting at
// 1, exactly the enumerable scheme the paper's crawler exploited.
type UserID uint64

// VenueID identifies a venue, also assigned incrementally.
type VenueID uint64

// Special is a real-world reward a partner business attaches to its
// venue ("a free cup of coffee"). The crawl in §2.1 found more than
// 90% of rewards were mayor-only.
type Special struct {
	Description string `json:"description"`
	MayorOnly   bool   `json:"mayorOnly"`
}

// User is the internal user record. External callers receive UserView
// copies.
type User struct {
	ID        UserID
	Name      string
	Username  string // optional; the paper found only 26.1% of users had one
	HomeCity  string
	CreatedAt time.Time

	TotalCheckins int // includes invalidated check-ins (§4.3 policy)
	ValidCheckins int
	Points        int
	Badges        map[string]struct{}
	FriendCount   int
}

// Venue is the internal venue record.
type Venue struct {
	ID       VenueID
	Name     string
	Address  string
	City     string
	Location geo.Point
	Special  *Special

	MayorID        UserID // 0 = no mayor
	CheckinsHere   int
	UniqueVisitors int
	// recentVisitors holds distinct recent visitor IDs, most recent
	// first, capped. The live site's "Who's been here" list had no
	// timestamps — a property the Fig 4.1 analysis leans on.
	recentVisitors []UserID
}

// UserView is the public snapshot of a user: exactly the fields the
// profile webpage exposes ("name, current location, number of
// check-ins, reward information, and a list of friends" — §3.2;
// mayorships and check-in history are hidden).
type UserView struct {
	ID            UserID    `json:"id"`
	Name          string    `json:"name"`
	Username      string    `json:"username,omitempty"`
	HomeCity      string    `json:"homeCity"`
	TotalCheckins int       `json:"totalCheckins"`
	TotalBadges   int       `json:"totalBadges"`
	Points        int       `json:"points"`
	FriendCount   int       `json:"friendCount"`
	CreatedAt     time.Time `json:"createdAt"`
}

// VenueView is the public snapshot of a venue: name, address,
// location, check-in counters, unique visitors, special, mayor link
// and the recent-visitor list (§3.2).
type VenueView struct {
	ID             VenueID   `json:"id"`
	Name           string    `json:"name"`
	Address        string    `json:"address"`
	City           string    `json:"city"`
	Location       geo.Point `json:"location"`
	MayorID        UserID    `json:"mayorId"`
	CheckinsHere   int       `json:"checkinsHere"`
	UniqueVisitors int       `json:"uniqueVisitors"`
	Special        *Special  `json:"special,omitempty"`
	RecentVisitors []UserID  `json:"recentVisitors"`
}

// CheckinRequest is what the client application submits: the venue the
// user claims to be at plus the GPS coordinates the device reports.
type CheckinRequest struct {
	UserID   UserID
	VenueID  VenueID
	Reported geo.Point // device GPS reading — the value attackers forge
	// Trace carries a pre-sampled span context from the edge (the API
	// server head-samples before calling CheckIn so the response can
	// name the trace). Zero means the pipeline makes its own sampling
	// decision at publish.
	Trace trace.Context
}

// DenyReason classifies why a check-in earned no rewards.
type DenyReason string

// Deny reasons. GPS mismatch is the location verification of §2.3;
// cheater-code reasons carry the triggering rule's name.
const (
	DenyNone        DenyReason = ""
	DenyGPSMismatch DenyReason = "gps-mismatch"
	// DenyQuarantined is the §2.3 access-control outcome: the user was
	// flagged as a cheater (manually or by the alert-volume policy) and
	// every check-in is refused until the quarantine expires.
	DenyQuarantined DenyReason = "quarantined"
)

// CheckinResult reports the outcome of one check-in.
type CheckinResult struct {
	Accepted bool
	// Reason is set when Accepted is false: DenyGPSMismatch or the
	// cheater-code rule name.
	Reason DenyReason
	Detail string

	PointsEarned    int
	NewBadges       []string
	BecameMayor     bool
	LostMayorTo     UserID // set on the previous mayor side via venue state; informational
	SpecialUnlocked string // non-empty when a special was redeemable on this check-in
	At              time.Time
}

// view builders --------------------------------------------------------

func (u *User) view() UserView {
	return UserView{
		ID:            u.ID,
		Name:          u.Name,
		Username:      u.Username,
		HomeCity:      u.HomeCity,
		TotalCheckins: u.TotalCheckins,
		TotalBadges:   len(u.Badges),
		Points:        u.Points,
		FriendCount:   u.FriendCount,
		CreatedAt:     u.CreatedAt,
	}
}

func (v *Venue) view() VenueView {
	var sp *Special
	if v.Special != nil {
		cp := *v.Special
		sp = &cp
	}
	visitors := make([]UserID, len(v.recentVisitors))
	copy(visitors, v.recentVisitors)
	return VenueView{
		ID:             v.ID,
		Name:           v.Name,
		Address:        v.Address,
		City:           v.City,
		Location:       v.Location,
		MayorID:        v.MayorID,
		CheckinsHere:   v.CheckinsHere,
		UniqueVisitors: v.UniqueVisitors,
		Special:        sp,
		RecentVisitors: visitors,
	}
}

// noteVisitor moves id to the front of the venue's recent-visitor
// list, keeping entries distinct and the list capped.
func (v *Venue) noteVisitor(id UserID, cap int) {
	for i, existing := range v.recentVisitors {
		if existing == id {
			copy(v.recentVisitors[1:i+1], v.recentVisitors[:i])
			v.recentVisitors[0] = id
			return
		}
	}
	if len(v.recentVisitors) < cap {
		v.recentVisitors = append(v.recentVisitors, 0)
	}
	copy(v.recentVisitors[1:], v.recentVisitors)
	v.recentVisitors[0] = id
}
