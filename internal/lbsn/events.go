package lbsn

import (
	"time"

	"locheat/internal/geo"
	"locheat/internal/trace"
)

// CheckinEvent is the service's record of one check-in attempt as it
// happened, published to observers on the hot path. It carries both the
// venue's registered location and the device-reported coordinates so
// downstream detectors can re-derive every §4 signal without holding a
// reference back into the service. Denied attempts are published too:
// per §4.3 a denied check-in still counts, and for online detection the
// *claim* is the evidence, accepted or not.
type CheckinEvent struct {
	// Seq is left zero by the service; stream publishers assign it.
	Seq     uint64
	UserID  UserID
	VenueID VenueID
	At      time.Time
	// Venue is the registered venue location (the coordinates the §2.3
	// rules operate on once GPS verification ties the device to them).
	Venue geo.Point
	// Reported is the raw device GPS reading — the value attackers
	// forge.
	Reported geo.Point
	Accepted bool
	// Reason is the deny reason for rejected attempts, empty when
	// Accepted.
	Reason DenyReason
	// IngestedAt is the wall-clock instant the event entered a
	// pipeline, stamped by the first Publish that sees it zero and
	// read back when an alert it caused is appended — the two ends of
	// the end-to-end detection-latency histogram. It never crosses
	// the wire (WireEvent omits it): a forwarded event is re-stamped
	// by the owner, and the forward hop is measured separately.
	IngestedAt time.Time `json:"-"`
	// Trace is the span context stamped at ingest when the event is
	// head-sampled (internal/trace). Like IngestedAt it is excluded
	// from direct JSON encoding — the cluster wire types carry it
	// explicitly, version-gated, so old peers stay decodable.
	Trace trace.Context `json:"-"`
}

// CheckinObserver receives every check-in attempt the service
// processes. Implementations MUST NOT block and MUST NOT call back into
// the Service: the observer runs on the check-in hot path while the
// service lock is held. The stream pipeline's Publish satisfies both
// (it is non-blocking by construction and touches no lbsn state).
type CheckinObserver func(CheckinEvent)

// SetCheckinObserver installs fn as the check-in event sink. A nil fn
// disables publication. Only one observer is supported; fan-out belongs
// to the pipeline layer.
func (s *Service) SetCheckinObserver(fn CheckinObserver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = fn
}

// emit publishes an event to the observer, if any. Called with s.mu
// held; see CheckinObserver for the contract that makes that safe.
func (s *Service) emit(req CheckinRequest, venueLoc geo.Point, at time.Time, res CheckinResult) {
	if s.observer == nil {
		return
	}
	s.observer(CheckinEvent{
		UserID:   req.UserID,
		VenueID:  req.VenueID,
		At:       at,
		Venue:    venueLoc,
		Reported: req.Reported,
		Accepted: res.Accepted,
		Reason:   res.Reason,
		Trace:    req.Trace,
	})
}
