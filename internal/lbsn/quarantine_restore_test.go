package lbsn

import (
	"testing"
	"time"

	"locheat/internal/simclock"
	"locheat/internal/store"
)

func TestQuarantineRecordsRoundTrip(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := New(DefaultConfig(), clock, nil)
	alice := svc.RegisterUser("alice", "", "SF")
	bob := svc.RegisterUser("bob", "", "SF")
	if err := svc.Quarantine(alice, time.Hour, "speed alerts", QuarantineSourcePolicy); err != nil {
		t.Fatal(err)
	}
	if err := svc.Quarantine(bob, 2*time.Hour, "manual", QuarantineSourceManual); err != nil {
		t.Fatal(err)
	}

	recs := svc.QuarantineRecords(nil)
	if len(recs) != 2 {
		t.Fatalf("exported %d records, want 2", len(recs))
	}
	only := svc.QuarantineRecords(func(id UserID) bool { return id == bob })
	if len(only) != 1 || only[0].UserID != uint64(bob) {
		t.Fatalf("filtered export = %v, want just bob", only)
	}

	// Restore into a fresh service (same clock epoch): the quarantine
	// keeps denying, source/reason intact.
	svc2 := New(DefaultConfig(), simclock.NewSimulated(simclock.Epoch()), nil)
	if n := svc2.RestoreQuarantines(recs); n != 2 {
		t.Fatalf("restored %d, want 2", n)
	}
	if !svc2.IsQuarantined(alice) || !svc2.IsQuarantined(bob) {
		t.Fatal("restored quarantines not active")
	}
	views := svc2.QuarantinedUsers()
	if len(views) != 2 || views[0].Source != QuarantineSourcePolicy {
		t.Fatalf("restored views = %v", views)
	}
}

func TestRestoreQuarantinesSkipsExpiredAndKeepsStricter(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := New(DefaultConfig(), clock, nil)
	u := svc.RegisterUser("u", "", "SF")
	if err := svc.Quarantine(u, 3*time.Hour, "local", QuarantineSourceManual); err != nil {
		t.Fatal(err)
	}
	now := clock.Now()
	n := svc.RestoreQuarantines([]store.QuarantineRecord{
		{UserID: uint64(u), Until: now.Add(time.Hour), Reason: "shorter", Source: "policy"},
		{UserID: 999, Until: now.Add(-time.Minute), Reason: "expired", Source: "policy"},
	})
	if n != 0 {
		t.Fatalf("restored %d, want 0 (shorter loses, expired dropped)", n)
	}
	views := svc.QuarantinedUsers()
	if len(views) != 1 || views[0].Reason != "local" {
		t.Fatalf("local stricter entry clobbered: %v", views)
	}
	// A user the service never registered restores fine (handoff case).
	if svc.RestoreQuarantines([]store.QuarantineRecord{{UserID: 777, Until: now.Add(time.Hour)}}) != 1 {
		t.Fatal("unknown-user restore refused")
	}
	if !svc.IsQuarantined(UserID(777)) {
		t.Fatal("unknown-user quarantine not active")
	}
}

func TestQuarantineListenerFires(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := New(DefaultConfig(), clock, nil)
	u := svc.RegisterUser("u", "", "SF")
	fired := 0
	// The listener reads back through the public API — this deadlocks
	// if notification ever happens under the lock.
	svc.SetQuarantineListener(func() {
		fired++
		_ = svc.QuarantineRecords(nil)
	})
	if err := svc.Quarantine(u, time.Hour, "r", QuarantineSourceManual); err != nil {
		t.Fatal(err)
	}
	if !svc.Unquarantine(u) {
		t.Fatal("unquarantine reported inactive")
	}
	svc.RestoreQuarantines([]store.QuarantineRecord{{UserID: uint64(u), Until: clock.Now().Add(time.Hour)}})
	if fired != 3 {
		t.Fatalf("listener fired %d times, want 3", fired)
	}
}
