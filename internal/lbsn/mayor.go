package lbsn

import (
	"sort"
	"time"
)

// mayorTracker maintains, per venue, the distinct check-in days of
// each user, and decides mayorships per §2.1: "mayorship of a venue is
// granted to the user who checked in to that venue the most days in
// the past 60 days. Only the number of days with check-ins to this
// venue are counted, without consideration of how many check-ins
// occurred per day."
type mayorTracker struct {
	windowDays int
	// days[venue][user] is the ascending list of distinct day numbers
	// with valid check-ins.
	days map[VenueID]map[UserID][]int
}

func newMayorTracker(windowDays int) *mayorTracker {
	if windowDays <= 0 {
		windowDays = 60
	}
	return &mayorTracker{
		windowDays: windowDays,
		days:       make(map[VenueID]map[UserID][]int),
	}
}

// record notes a valid check-in and returns the user's distinct-day
// count within the window ending at `at`.
func (m *mayorTracker) record(venue VenueID, user UserID, at time.Time) int {
	byUser := m.days[venue]
	if byUser == nil {
		byUser = make(map[UserID][]int)
		m.days[venue] = byUser
	}
	day := dayNumber(at)
	days := byUser[user]
	i := sort.SearchInts(days, day)
	if i == len(days) || days[i] != day {
		days = append(days, 0)
		copy(days[i+1:], days[i:])
		days[i] = day
	}
	// Prune days that have fallen out of the window to bound memory.
	cutoff := day - m.windowDays + 1
	firstIn := sort.SearchInts(days, cutoff)
	days = days[firstIn:]
	byUser[user] = days
	return len(days)
}

// countInWindow returns the user's distinct-day count at the venue
// within the window ending at `at`, without recording anything.
func (m *mayorTracker) countInWindow(venue VenueID, user UserID, at time.Time) int {
	days := m.days[venue][user]
	if len(days) == 0 {
		return 0
	}
	day := dayNumber(at)
	cutoff := day - m.windowDays + 1
	lo := sort.SearchInts(days, cutoff)
	hi := sort.SearchInts(days, day+1)
	if hi < lo {
		return 0
	}
	return hi - lo
}

// leader returns the user with the most distinct days in the window
// ending at `at` and that count. Ties are broken toward the incumbent,
// then toward the lower user ID (deterministic). Returns (0, 0) when
// nobody has a qualifying day.
func (m *mayorTracker) leader(venue VenueID, incumbent UserID, at time.Time) (UserID, int) {
	byUser := m.days[venue]
	best := UserID(0)
	bestCount := 0
	for user := range byUser {
		c := m.countInWindow(venue, user, at)
		if c == 0 {
			continue
		}
		switch {
		case c > bestCount:
			best, bestCount = user, c
		case c == bestCount:
			if user == incumbent || (best != incumbent && user < best) {
				best = user
			}
		}
	}
	return best, bestCount
}
