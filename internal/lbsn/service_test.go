package lbsn

import (
	"errors"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/simclock"
)

// newTestService returns a service on a simulated clock with default
// paper-faithful policy.
func newTestService() (*Service, *simclock.Simulated) {
	clock := simclock.NewSimulated(simclock.Epoch())
	return New(DefaultConfig(), clock, nil), clock
}

// addVenueAt is a test helper that fails the test on error.
func addVenueAt(t *testing.T, s *Service, name string, loc geo.Point, sp *Special) VenueID {
	t.Helper()
	id, err := s.AddVenue(name, "1 Test St", "Testville", loc, sp)
	if err != nil {
		t.Fatalf("AddVenue(%s): %v", name, err)
	}
	return id
}

func TestIncrementingIDs(t *testing.T) {
	s, _ := newTestService()
	u1 := s.RegisterUser("Alice", "alice", "Lincoln")
	u2 := s.RegisterUser("Bob", "", "Lincoln")
	if u1 != 1 || u2 != 2 {
		t.Errorf("user IDs = %d,%d, want 1,2 (incrementing numeric IDs, §3.2)", u1, u2)
	}
	p := geo.Point{Lat: 40.81, Lon: -96.70}
	v1 := addVenueAt(t, s, "Coffee A", p, nil)
	v2 := addVenueAt(t, s, "Coffee B", p.Destination(90, 300), nil)
	if v1 != 1 || v2 != 2 {
		t.Errorf("venue IDs = %d,%d, want 1,2", v1, v2)
	}
	if s.MaxUserID() != 2 || s.MaxVenueID() != 2 {
		t.Errorf("MaxUserID/MaxVenueID = %d/%d, want 2/2", s.MaxUserID(), s.MaxVenueID())
	}
}

func TestCheckInHappyPath(t *testing.T) {
	s, _ := newTestService()
	u := s.RegisterUser("Alice", "alice", "Lincoln")
	loc := geo.Point{Lat: 40.81, Lon: -96.70}
	v := addVenueAt(t, s, "The Mill", loc, nil)

	res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc})
	if err != nil {
		t.Fatalf("CheckIn: %v", err)
	}
	if !res.Accepted {
		t.Fatalf("check-in denied: %s %s", res.Reason, res.Detail)
	}
	if res.PointsEarned != 8 { // base 1 + first-venue 2 + mayor 5 (sole visitor wins the mayorship)
		t.Errorf("points = %d, want 8", res.PointsEarned)
	}
	if !res.BecameMayor {
		t.Error("sole visitor should win the uncontested mayorship")
	}
	if len(res.NewBadges) == 0 || res.NewBadges[0] != "Newbie" {
		t.Errorf("badges = %v, want [Newbie]", res.NewBadges)
	}
	uv, _ := s.User(u)
	if uv.TotalCheckins != 1 || uv.Points != 8 || uv.TotalBadges != 1 {
		t.Errorf("user view = %+v", uv)
	}
	vv, _ := s.Venue(v)
	if vv.CheckinsHere != 1 || vv.UniqueVisitors != 1 {
		t.Errorf("venue counters = %d/%d, want 1/1", vv.CheckinsHere, vv.UniqueVisitors)
	}
	if len(vv.RecentVisitors) != 1 || vv.RecentVisitors[0] != u {
		t.Errorf("recent visitors = %v, want [%d]", vv.RecentVisitors, u)
	}
}

func TestCheckInGPSMismatchDeniedButCounted(t *testing.T) {
	s, _ := newTestService()
	u := s.RegisterUser("Mallory", "", "Lincoln")
	sf, _ := geo.FindCity("San Francisco")
	lincoln, _ := geo.FindCity("Lincoln")
	v := addVenueAt(t, s, "Fisherman's Wharf Sign", sf.Center, nil)

	// Device honestly reports Lincoln while claiming a SF venue.
	res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: lincoln.Center})
	if err != nil {
		t.Fatalf("CheckIn: %v", err)
	}
	if res.Accepted || res.Reason != DenyGPSMismatch {
		t.Fatalf("result = %+v, want gps-mismatch denial", res)
	}
	if res.PointsEarned != 0 || len(res.NewBadges) != 0 {
		t.Error("denied check-in must earn nothing")
	}
	// §4.3 policy: still counts toward the total.
	uv, _ := s.User(u)
	if uv.TotalCheckins != 1 {
		t.Errorf("TotalCheckins = %d, want 1 (denied check-ins still count)", uv.TotalCheckins)
	}
	if uv.Points != 0 {
		t.Errorf("Points = %d, want 0", uv.Points)
	}
	// Venue counters untouched.
	vv, _ := s.Venue(v)
	if vv.CheckinsHere != 0 || len(vv.RecentVisitors) != 0 {
		t.Errorf("venue gained counters from a denied check-in: %+v", vv)
	}
}

func TestCheckInSpoofedGPSAccepted(t *testing.T) {
	// The attack of §3.1: the device *reports* the venue's coordinates
	// even though the attacker is 1000+ miles away; the server cannot
	// tell and accepts.
	s, _ := newTestService()
	u := s.RegisterUser("Mallory", "", "Lincoln")
	sf, _ := geo.FindCity("San Francisco")
	v := addVenueAt(t, s, "Fisherman's Wharf Sign", sf.Center, nil)

	res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: sf.Center})
	if err != nil {
		t.Fatalf("CheckIn: %v", err)
	}
	if !res.Accepted {
		t.Fatalf("spoofed check-in denied: %s %s", res.Reason, res.Detail)
	}
}

func TestCheckInCheaterCodeDenial(t *testing.T) {
	s, clock := newTestService()
	u := s.RegisterUser("Mallory", "", "Albuquerque")
	abq, _ := geo.FindCity("Albuquerque")
	sf, _ := geo.FindCity("San Francisco")
	v1 := addVenueAt(t, s, "ABQ Cafe", abq.Center, nil)
	v2 := addVenueAt(t, s, "SF Cafe", sf.Center, nil)

	if res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v1, Reported: abq.Center}); err != nil || !res.Accepted {
		t.Fatalf("seed check-in: res=%+v err=%v", res, err)
	}
	clock.Advance(10 * time.Minute)
	// ABQ -> SF in 10 minutes with spoofed GPS: superhuman speed.
	res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v2, Reported: sf.Center})
	if err != nil {
		t.Fatalf("CheckIn: %v", err)
	}
	if res.Accepted || res.Reason != "superhuman-speed" {
		t.Fatalf("result = %+v, want superhuman-speed denial", res)
	}
	uv, _ := s.User(u)
	if uv.TotalCheckins != 2 {
		t.Errorf("TotalCheckins = %d, want 2", uv.TotalCheckins)
	}
	_, denied, _ := s.Stats()
	if denied != 1 {
		t.Errorf("denied counter = %d, want 1", denied)
	}
}

func TestCheckInErrors(t *testing.T) {
	s, _ := newTestService()
	u := s.RegisterUser("Alice", "", "Lincoln")
	loc := geo.Point{Lat: 40.81, Lon: -96.70}
	v := addVenueAt(t, s, "The Mill", loc, nil)

	if _, err := s.CheckIn(CheckinRequest{UserID: 999, VenueID: v, Reported: loc}); !errors.Is(err, ErrUserNotFound) {
		t.Errorf("missing user error = %v, want ErrUserNotFound", err)
	}
	if _, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: 999, Reported: loc}); !errors.Is(err, ErrVenueNotFound) {
		t.Errorf("missing venue error = %v, want ErrVenueNotFound", err)
	}
	bad := geo.Point{Lat: 91, Lon: 0}
	if _, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: bad}); !errors.Is(err, ErrBadLocation) {
		t.Errorf("bad location error = %v, want ErrBadLocation", err)
	}
	// Errors must not count as check-ins.
	uv, _ := s.User(u)
	if uv.TotalCheckins != 0 {
		t.Errorf("TotalCheckins = %d after errored requests, want 0", uv.TotalCheckins)
	}
}

func TestAddVenueBadLocation(t *testing.T) {
	s, _ := newTestService()
	if _, err := s.AddVenue("X", "", "", geo.Point{Lat: 100, Lon: 0}, nil); !errors.Is(err, ErrBadLocation) {
		t.Errorf("AddVenue bad location error = %v, want ErrBadLocation", err)
	}
}

func TestAdventurerBadgeAfterTenVenues(t *testing.T) {
	// §3.1: "after checking in to 10 different venues, we got the badge
	// 'Adventurer: You've checked into 10 different venues!'"
	s, clock := newTestService()
	u := s.RegisterUser("Mallory", "", "Lincoln")
	base := geo.Point{Lat: 40.81, Lon: -96.70}
	var got []string
	for i := 0; i < 10; i++ {
		loc := base.Destination(float64(i*36), 1000+float64(i)*500)
		v := addVenueAt(t, s, "Venue", loc, nil)
		clock.Advance(2 * time.Hour) // stay under the speed limit
		res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc})
		if err != nil || !res.Accepted {
			t.Fatalf("check-in %d: res=%+v err=%v", i, res, err)
		}
		got = append(got, res.NewBadges...)
	}
	found := false
	for _, b := range got {
		if b == "Adventurer" {
			found = true
		}
	}
	if !found {
		t.Errorf("badges after 10 venues = %v, want Adventurer included", got)
	}
}

func TestMayorshipAfterFourDailyCheckins(t *testing.T) {
	// E1: the paper's test user checked in once a day for 4 consecutive
	// days at Fisherman's Wharf Sign and became mayor (the venue's
	// incumbent had fewer qualifying days).
	s, clock := newTestService()
	incumbent := s.RegisterUser("Incumbent", "", "San Francisco")
	attacker := s.RegisterUser("Mallory", "", "Lincoln")
	sf, _ := geo.FindCity("San Francisco")
	v := addVenueAt(t, s, "Fisherman's Wharf Sign", sf.Center, nil)

	// Incumbent establishes 2 qualifying days.
	for day := 0; day < 2; day++ {
		res, err := s.CheckIn(CheckinRequest{UserID: incumbent, VenueID: v, Reported: sf.Center})
		if err != nil || !res.Accepted {
			t.Fatalf("incumbent day %d: res=%+v err=%v", day, res, err)
		}
		clock.Advance(24 * time.Hour)
	}
	if got := s.Mayor(v); got != incumbent {
		t.Fatalf("mayor = %d, want incumbent %d", got, incumbent)
	}

	// Attacker (GPS-spoofed) checks in daily for 4 consecutive days.
	becameMayor := false
	for day := 0; day < 4; day++ {
		res, err := s.CheckIn(CheckinRequest{UserID: attacker, VenueID: v, Reported: sf.Center})
		if err != nil || !res.Accepted {
			t.Fatalf("attacker day %d: res=%+v err=%v", day, res, err)
		}
		if res.BecameMayor {
			becameMayor = true
		}
		clock.Advance(24 * time.Hour)
	}
	if !becameMayor {
		t.Error("attacker never received BecameMayor")
	}
	if got := s.Mayor(v); got != attacker {
		t.Errorf("mayor = %d, want attacker %d", got, attacker)
	}
	if s.MayorshipsOf(attacker) != 1 || s.MayorshipsOf(incumbent) != 0 {
		t.Errorf("mayor counts = %d/%d, want 1/0",
			s.MayorshipsOf(attacker), s.MayorshipsOf(incumbent))
	}
}

func TestMayorOnlySpecialRequiresMayor(t *testing.T) {
	s, clock := newTestService()
	u := s.RegisterUser("Alice", "", "Lincoln")
	loc := geo.Point{Lat: 40.81, Lon: -96.70}
	sp := &Special{Description: "Free coffee for the mayor", MayorOnly: true}
	v := addVenueAt(t, s, "Starbucks #1", loc, sp)

	res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc})
	if err != nil || !res.Accepted {
		t.Fatalf("check-in: res=%+v err=%v", res, err)
	}
	// First check-in makes the user mayor of an uncontested venue, so
	// the special unlocks on the same check-in.
	if !res.BecameMayor {
		t.Fatal("sole visitor should become mayor of an uncontested venue")
	}
	if res.SpecialUnlocked == "" {
		t.Error("mayor-only special should unlock for the mayor")
	}

	// A second user checking in does not get the special.
	u2 := s.RegisterUser("Bob", "", "Lincoln")
	clock.Advance(2 * time.Hour)
	res2, err := s.CheckIn(CheckinRequest{UserID: u2, VenueID: v, Reported: loc})
	if err != nil || !res2.Accepted {
		t.Fatalf("check-in 2: res=%+v err=%v", res2, err)
	}
	if res2.SpecialUnlocked != "" {
		t.Error("non-mayor unlocked a mayor-only special")
	}
}

func TestOpenSpecialUnlocksForAnyone(t *testing.T) {
	// §3.4: "some special offers do not require mayorship which are
	// much easier to obtain."
	s, _ := newTestService()
	u := s.RegisterUser("Alice", "", "Lincoln")
	loc := geo.Point{Lat: 40.81, Lon: -96.70}
	sp := &Special{Description: "10% off any purchase", MayorOnly: false}
	v := addVenueAt(t, s, "Open Deal Cafe", loc, sp)
	res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc})
	if err != nil || !res.Accepted {
		t.Fatalf("check-in: res=%+v err=%v", res, err)
	}
	if res.SpecialUnlocked != "10% off any purchase" {
		t.Errorf("SpecialUnlocked = %q, want the open special", res.SpecialUnlocked)
	}
}

func TestRecentVisitorListDistinctCappedOrdered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecentVisitorCap = 3
	clock := simclock.NewSimulated(simclock.Epoch())
	s := New(cfg, clock, nil)
	loc := geo.Point{Lat: 40.81, Lon: -96.70}
	v := addVenueAt(t, s, "Popular Spot", loc, nil)

	var users []UserID
	for i := 0; i < 5; i++ {
		users = append(users, s.RegisterUser("U", "", "Lincoln"))
	}
	for _, u := range users {
		clock.Advance(90 * time.Minute)
		if res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc}); err != nil || !res.Accepted {
			t.Fatalf("check-in user %d: res=%+v err=%v", u, res, err)
		}
	}
	vv, _ := s.Venue(v)
	if len(vv.RecentVisitors) != 3 {
		t.Fatalf("recent list = %v, want 3 entries (cap)", vv.RecentVisitors)
	}
	// Most recent first: users[4], users[3], users[2].
	want := []UserID{users[4], users[3], users[2]}
	for i := range want {
		if vv.RecentVisitors[i] != want[i] {
			t.Errorf("recent[%d] = %d, want %d", i, vv.RecentVisitors[i], want[i])
		}
	}
	// Re-visit by users[2] moves it to the front without duplication.
	clock.Advance(90 * time.Minute)
	if res, err := s.CheckIn(CheckinRequest{UserID: users[2], VenueID: v, Reported: loc}); err != nil || !res.Accepted {
		t.Fatalf("revisit: res=%+v err=%v", res, err)
	}
	vv, _ = s.Venue(v)
	if vv.RecentVisitors[0] != users[2] || len(vv.RecentVisitors) != 3 {
		t.Errorf("after revisit recent = %v, want front=%d len=3", vv.RecentVisitors, users[2])
	}
}

func TestUniqueVisitorsCountsDistinctUsers(t *testing.T) {
	s, clock := newTestService()
	loc := geo.Point{Lat: 40.81, Lon: -96.70}
	v := addVenueAt(t, s, "Spot", loc, nil)
	u1 := s.RegisterUser("A", "", "Lincoln")
	u2 := s.RegisterUser("B", "", "Lincoln")
	for i := 0; i < 3; i++ {
		clock.Advance(2 * time.Hour)
		if _, err := s.CheckIn(CheckinRequest{UserID: u1, VenueID: v, Reported: loc}); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(2 * time.Hour)
	if _, err := s.CheckIn(CheckinRequest{UserID: u2, VenueID: v, Reported: loc}); err != nil {
		t.Fatal(err)
	}
	vv, _ := s.Venue(v)
	if vv.CheckinsHere != 4 || vv.UniqueVisitors != 2 {
		t.Errorf("counters = %d/%d, want 4/2", vv.CheckinsHere, vv.UniqueVisitors)
	}
}

func TestNearbyAndNearestVenues(t *testing.T) {
	s, _ := newTestService()
	base := geo.Point{Lat: 35.08, Lon: -106.62}
	close1 := addVenueAt(t, s, "Close", base.Destination(0, 100), nil)
	_ = addVenueAt(t, s, "Medium", base.Destination(90, 800), nil)
	far := addVenueAt(t, s, "Far", base.Destination(180, 30000), nil)

	nearest, ok := s.NearestVenue(base)
	if !ok || nearest.ID != close1 {
		t.Errorf("NearestVenue = %+v, want id %d", nearest, close1)
	}
	nearby := s.NearbyVenues(base, 1000, 0)
	if len(nearby) != 2 {
		t.Fatalf("NearbyVenues(1km) = %d venues, want 2", len(nearby))
	}
	if nearby[0].ID != close1 {
		t.Errorf("nearby[0] = %d, want closest %d", nearby[0].ID, close1)
	}
	for _, v := range nearby {
		if v.ID == far {
			t.Error("far venue returned within 1 km")
		}
	}
	limited := s.NearbyVenues(base, 1000, 1)
	if len(limited) != 1 {
		t.Errorf("limit=1 returned %d venues", len(limited))
	}
}

func TestSearchVenues(t *testing.T) {
	s, _ := newTestService()
	p := geo.Point{Lat: 35.08, Lon: -106.62}
	_ = addVenueAt(t, s, "Starbucks #42", p, nil)
	_ = addVenueAt(t, s, "Lone Star BBQ", p.Destination(0, 200), nil)
	_ = addVenueAt(t, s, "STARBUCKS downtown", p.Destination(90, 200), nil)

	got := s.SearchVenues("starbucks", 0)
	if len(got) != 2 {
		t.Fatalf("search starbucks = %d hits, want 2 (case-insensitive)", len(got))
	}
	if got[0].ID > got[1].ID {
		t.Error("search results must be ordered by ID")
	}
	if n := len(s.SearchVenues("starbucks", 1)); n != 1 {
		t.Errorf("limited search = %d hits, want 1", n)
	}
	if n := len(s.SearchVenues("waffle", 0)); n != 0 {
		t.Errorf("no-match search = %d hits, want 0", n)
	}
}

func TestUserByUsername(t *testing.T) {
	s, _ := newTestService()
	id := s.RegisterUser("Alice", "alice2010", "Lincoln")
	s.RegisterUser("Bob", "", "Lincoln")
	got, ok := s.UserByUsername("alice2010")
	if !ok || got.ID != id {
		t.Errorf("UserByUsername = (%+v, %v), want id %d", got, ok, id)
	}
	if _, ok := s.UserByUsername("nobody"); ok {
		t.Error("unknown username resolved")
	}
	if _, ok := s.UserByUsername(""); ok {
		t.Error("empty username resolved")
	}
}

func TestBulkLoad(t *testing.T) {
	s, _ := newTestService()
	userIDs := s.BulkLoadUsers([]UserSeed{
		{Name: "Synth1", TotalCheckins: 100, ValidCheckins: 90, Points: 200, BadgeCount: 5, FriendCount: 12},
		{Name: "Synth2", Username: "synth2", TotalCheckins: 3},
	})
	if len(userIDs) != 2 || userIDs[0] != 1 || userIDs[1] != 2 {
		t.Fatalf("bulk user IDs = %v", userIDs)
	}
	uv, _ := s.User(userIDs[0])
	if uv.TotalCheckins != 100 || uv.TotalBadges != 5 || uv.Points != 200 || uv.FriendCount != 12 {
		t.Errorf("bulk user view = %+v", uv)
	}

	sf, _ := geo.FindCity("San Francisco")
	venueIDs := s.BulkLoadVenues([]VenueSeed{
		{
			Name: "Starbucks #9", City: "San Francisco", Location: sf.Center,
			CheckinsHere: 500, UniqueVisitors: 300, MayorID: userIDs[0],
			RecentVisitors: []UserID{userIDs[0], userIDs[1]},
			Special:        &Special{Description: "Free drip", MayorOnly: true},
		},
	})
	vv, _ := s.Venue(venueIDs[0])
	if vv.MayorID != userIDs[0] || vv.CheckinsHere != 500 || vv.UniqueVisitors != 300 {
		t.Errorf("bulk venue view = %+v", vv)
	}
	if len(vv.RecentVisitors) != 2 {
		t.Errorf("bulk venue recent = %v", vv.RecentVisitors)
	}
	if s.MayorshipsOf(userIDs[0]) != 1 {
		t.Errorf("MayorshipsOf = %d, want 1", s.MayorshipsOf(userIDs[0]))
	}
	// Bulk venues are searchable and spatially indexed.
	if _, ok := s.NearestVenue(sf.Center); !ok {
		t.Error("bulk venue missing from spatial index")
	}
}

func TestViewsAreCopies(t *testing.T) {
	s, _ := newTestService()
	loc := geo.Point{Lat: 40.81, Lon: -96.70}
	v := addVenueAt(t, s, "Spot", loc, &Special{Description: "deal"})
	u := s.RegisterUser("A", "", "Lincoln")
	if _, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc}); err != nil {
		t.Fatal(err)
	}
	vv, _ := s.Venue(v)
	vv.RecentVisitors[0] = 999
	vv.Special.Description = "mutated"
	fresh, _ := s.Venue(v)
	if fresh.RecentVisitors[0] == 999 {
		t.Error("mutating a view's RecentVisitors leaked into the service")
	}
	if fresh.Special.Description == "mutated" {
		t.Error("mutating a view's Special leaked into the service")
	}
}

func TestSetFriendCount(t *testing.T) {
	s, _ := newTestService()
	u := s.RegisterUser("A", "", "Lincoln")
	if err := s.SetFriendCount(u, 7); err != nil {
		t.Fatal(err)
	}
	uv, _ := s.User(u)
	if uv.FriendCount != 7 {
		t.Errorf("FriendCount = %d, want 7", uv.FriendCount)
	}
	if err := s.SetFriendCount(999, 1); !errors.Is(err, ErrUserNotFound) {
		t.Errorf("missing user error = %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	s, clock := newTestService()
	u := s.RegisterUser("A", "", "Lincoln")
	loc := geo.Point{Lat: 40.81, Lon: -96.70}
	v := addVenueAt(t, s, "Spot", loc, nil)
	if _, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	if _, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc}); err != nil {
		t.Fatal(err) // frequent-checkin denial, not an error
	}
	total, denied, _ := s.Stats()
	if total != 2 || denied != 1 {
		t.Errorf("Stats = %d/%d, want 2/1", total, denied)
	}
}
