package lbsn

import (
	"testing"
	"time"

	"locheat/internal/simclock"
)

func TestMayorTrackerDayCountedNotCheckinCounted(t *testing.T) {
	// §2.1: "Only the number of days with check-ins to this venue are
	// counted, without consideration of how many check-ins occurred
	// per day."
	m := newMayorTracker(60)
	t0 := simclock.Epoch()
	// User 1: five check-ins on one day.
	for i := 0; i < 5; i++ {
		m.record(1, 1, t0.Add(time.Duration(i)*time.Hour))
	}
	// User 2: one check-in on each of two days.
	m.record(1, 2, t0)
	m.record(1, 2, t0.Add(24*time.Hour))

	at := t0.Add(25 * time.Hour)
	if got := m.countInWindow(1, 1, at); got != 1 {
		t.Errorf("user 1 days = %d, want 1 (five same-day check-ins are one day)", got)
	}
	if got := m.countInWindow(1, 2, at); got != 2 {
		t.Errorf("user 2 days = %d, want 2", got)
	}
	leader, count := m.leader(1, 0, at)
	if leader != 2 || count != 2 {
		t.Errorf("leader = (%d,%d), want (2,2)", leader, count)
	}
}

func TestMayorTrackerWindowDecay(t *testing.T) {
	m := newMayorTracker(60)
	t0 := simclock.Epoch()
	// User 1: 3 days right at the start.
	for d := 0; d < 3; d++ {
		m.record(7, 1, t0.Add(time.Duration(d)*24*time.Hour))
	}
	at := t0.Add(2 * 24 * time.Hour)
	if got := m.countInWindow(7, 1, at); got != 3 {
		t.Fatalf("in-window days = %d, want 3", got)
	}
	// 100 days later, everything has decayed out of the 60-day window.
	later := t0.Add(100 * 24 * time.Hour)
	if got := m.countInWindow(7, 1, later); got != 0 {
		t.Errorf("days after 100d = %d, want 0 (outside the 60-day window)", got)
	}
	leader, _ := m.leader(7, 1, later)
	if leader != 0 {
		t.Errorf("leader after decay = %d, want 0 (nobody qualifies)", leader)
	}
}

func TestMayorTrackerTieGoesToIncumbent(t *testing.T) {
	m := newMayorTracker(60)
	t0 := simclock.Epoch()
	m.record(3, 10, t0)
	m.record(3, 20, t0.Add(time.Hour))
	at := t0.Add(2 * time.Hour)

	leader, count := m.leader(3, 20, at)
	if leader != 20 || count != 1 {
		t.Errorf("tie with incumbent 20 = (%d,%d), want (20,1)", leader, count)
	}
	leader, _ = m.leader(3, 10, at)
	if leader != 10 {
		t.Errorf("tie with incumbent 10 = %d, want 10", leader)
	}
	// No incumbent: deterministic lower ID.
	leader, _ = m.leader(3, 0, at)
	if leader != 10 {
		t.Errorf("tie without incumbent = %d, want lower id 10", leader)
	}
}

func TestMayorTrackerRecordReturnsWindowCount(t *testing.T) {
	m := newMayorTracker(60)
	t0 := simclock.Epoch()
	if got := m.record(5, 1, t0); got != 1 {
		t.Errorf("first record = %d, want 1", got)
	}
	if got := m.record(5, 1, t0.Add(2*time.Hour)); got != 1 {
		t.Errorf("same-day record = %d, want 1", got)
	}
	if got := m.record(5, 1, t0.Add(24*time.Hour)); got != 2 {
		t.Errorf("next-day record = %d, want 2", got)
	}
}

func TestMayorTrackerPrunesOldDays(t *testing.T) {
	m := newMayorTracker(60)
	t0 := simclock.Epoch()
	for d := 0; d < 200; d++ {
		m.record(9, 1, t0.Add(time.Duration(d)*24*time.Hour))
	}
	if got := len(m.days[9][1]); got > 61 {
		t.Errorf("retained %d days, want <= 61 (window pruning)", got)
	}
	at := t0.Add(199 * 24 * time.Hour)
	if got := m.countInWindow(9, 1, at); got != 60 {
		t.Errorf("window count = %d, want 60", got)
	}
}

func TestMayorTrackerDefaultWindow(t *testing.T) {
	m := newMayorTracker(0)
	if m.windowDays != 60 {
		t.Errorf("default window = %d, want 60", m.windowDays)
	}
}

func TestMayorshipDenialScenario(t *testing.T) {
	// §3.4: "to stop a user from getting any mayorship, the attacker
	// ... will apply an automated cheating attack on those venues" —
	// here the attacker out-days the victim at the venue level.
	s, clock := newTestService()
	victim := s.RegisterUser("Victim", "", "Albuquerque")
	attacker := s.RegisterUser("Attacker", "", "Lincoln")
	loc := mustCity(t, "Albuquerque")
	v := addVenueAt(t, s, "Victim's Local", loc, nil)

	// Victim: 2 qualifying days.
	for d := 0; d < 2; d++ {
		if res, err := s.CheckIn(CheckinRequest{UserID: victim, VenueID: v, Reported: loc}); err != nil || !res.Accepted {
			t.Fatalf("victim day %d: %+v %v", d, res, err)
		}
		clock.Advance(24 * time.Hour)
	}
	if s.Mayor(v) != victim {
		t.Fatal("victim should start as mayor")
	}
	// Attacker: 3 qualifying days (spoofed).
	for d := 0; d < 3; d++ {
		if res, err := s.CheckIn(CheckinRequest{UserID: attacker, VenueID: v, Reported: loc}); err != nil || !res.Accepted {
			t.Fatalf("attacker day %d: %+v %v", d, res, err)
		}
		clock.Advance(24 * time.Hour)
	}
	if got := s.Mayor(v); got != attacker {
		t.Errorf("mayor after attack = %d, want attacker %d", got, attacker)
	}
}

func TestMayorshipDecaysThroughService(t *testing.T) {
	// End-to-end window decay: an absent mayor loses the crown to a
	// newcomer once their qualifying days age out of the 60-day window.
	s, clock := newTestService()
	early := s.RegisterUser("Early Bird", "", "Lincoln")
	late := s.RegisterUser("Late Comer", "", "Lincoln")
	loc := mustCity(t, "Lincoln")
	v := addVenueAt(t, s, "Decay Venue", loc, nil)

	// Early bird: 5 qualifying days, then goes silent.
	for d := 0; d < 5; d++ {
		if res, err := s.CheckIn(CheckinRequest{UserID: early, VenueID: v, Reported: loc}); err != nil || !res.Accepted {
			t.Fatalf("early day %d: %+v %v", d, res, err)
		}
		clock.Advance(24 * time.Hour)
	}
	if s.Mayor(v) != early {
		t.Fatal("early bird should be mayor")
	}
	// 70 days pass: the early bird's days are out of the window.
	clock.Advance(70 * 24 * time.Hour)
	// Late comer needs just 2 days against the decayed incumbent.
	for d := 0; d < 2; d++ {
		if res, err := s.CheckIn(CheckinRequest{UserID: late, VenueID: v, Reported: loc}); err != nil || !res.Accepted {
			t.Fatalf("late day %d: %+v %v", d, res, err)
		}
		clock.Advance(24 * time.Hour)
	}
	if got := s.Mayor(v); got != late {
		t.Errorf("mayor after decay = %d, want late comer %d", got, late)
	}
	if s.MayorshipsOf(early) != 0 || s.MayorshipsOf(late) != 1 {
		t.Errorf("mayor counts = %d/%d, want 0/1", s.MayorshipsOf(early), s.MayorshipsOf(late))
	}
}
