package lbsn

import (
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/simclock"
)

func mustCity(t *testing.T, name string) geo.Point {
	t.Helper()
	c, ok := geo.FindCity(name)
	if !ok {
		t.Fatalf("gazetteer missing %q", name)
	}
	return c.Center
}

func TestUserStateObserveDistinctDays(t *testing.T) {
	s := newUserState()
	t0 := simclock.Epoch()
	s.observe(1, t0)
	s.observe(2, t0.Add(time.Hour))      // same day
	s.observe(3, t0.Add(25*time.Hour))   // next day
	s.observe(4, t0.Add(3*24*time.Hour)) // gap day
	if len(s.checkinDays) != 3 {
		t.Errorf("distinct days = %d, want 3", len(s.checkinDays))
	}
	if s.validTotal != 4 {
		t.Errorf("validTotal = %d, want 4", s.validTotal)
	}
	if len(s.distinctVenues) != 4 {
		t.Errorf("distinct venues = %d, want 4", len(s.distinctVenues))
	}
}

func TestConsecutiveDaysEndingAt(t *testing.T) {
	s := newUserState()
	t0 := simclock.Epoch()
	// Days 0,1,2 then a gap, then day 4.
	for _, d := range []int{0, 1, 2, 4} {
		s.observe(1, t0.Add(time.Duration(d)*24*time.Hour))
	}
	if got := s.consecutiveDaysEndingAt(t0.Add(2 * 24 * time.Hour)); got != 3 {
		t.Errorf("run ending day 2 = %d, want 3", got)
	}
	if got := s.consecutiveDaysEndingAt(t0.Add(4 * 24 * time.Hour)); got != 1 {
		t.Errorf("run ending day 4 = %d, want 1", got)
	}
	if got := s.consecutiveDaysEndingAt(t0.Add(10 * 24 * time.Hour)); got != 0 {
		t.Errorf("run on a no-check-in day = %d, want 0", got)
	}
}

func TestBenderBadgeFourConsecutiveDays(t *testing.T) {
	s, clock := newTestService()
	u := s.RegisterUser("A", "", "Lincoln")
	loc := mustCity(t, "Lincoln")
	v := addVenueAt(t, s, "Daily Stop", loc, nil)

	var badges []string
	for d := 0; d < 4; d++ {
		res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc})
		if err != nil || !res.Accepted {
			t.Fatalf("day %d: %+v %v", d, res, err)
		}
		badges = append(badges, res.NewBadges...)
		clock.Advance(24 * time.Hour)
	}
	if !contains(badges, "Bender") {
		t.Errorf("badges = %v, want Bender after 4 consecutive days", badges)
	}
}

func TestLocalBadgeThreeSameVenueInWeek(t *testing.T) {
	s, clock := newTestService()
	u := s.RegisterUser("A", "", "Lincoln")
	loc := mustCity(t, "Lincoln")
	v := addVenueAt(t, s, "Regular Haunt", loc, nil)
	var badges []string
	for i := 0; i < 3; i++ {
		res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc})
		if err != nil || !res.Accepted {
			t.Fatalf("visit %d: %+v %v", i, res, err)
		}
		badges = append(badges, res.NewBadges...)
		clock.Advance(36 * time.Hour)
	}
	if !contains(badges, "Local") {
		t.Errorf("badges = %v, want Local after 3 visits in a week", badges)
	}
}

func TestSuperUserBadgeThirtyInMonth(t *testing.T) {
	s, clock := newTestService()
	u := s.RegisterUser("A", "", "Lincoln")
	base := mustCity(t, "Lincoln")
	// 30 venues, two check-ins a day over 15 days, all within August.
	var venues []VenueID
	for i := 0; i < 30; i++ {
		venues = append(venues, addVenueAt(t, s, "V", base.Destination(float64(i*12), 500+float64(i)*200), nil))
	}
	var badges []string
	for i, v := range venues {
		loc, _ := s.Venue(v)
		res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc.Location})
		if err != nil || !res.Accepted {
			t.Fatalf("check-in %d: %+v %v", i, res, err)
		}
		badges = append(badges, res.NewBadges...)
		clock.Advance(11 * time.Hour)
	}
	if !contains(badges, "Super User") {
		t.Errorf("badges = %v, want Super User after 30 check-ins in a month", badges)
	}
}

func TestCrunkedBadgeFourInOneNight(t *testing.T) {
	s, clock := newTestService()
	u := s.RegisterUser("A", "", "Lincoln")
	base := mustCity(t, "Lincoln")
	var badges []string
	for i := 0; i < 4; i++ {
		// Venues ~1 km apart, 20 minutes between stops: a bar crawl
		// that passes speed and rapid-fire rules.
		loc := base.Destination(90, float64(i)*1000)
		v := addVenueAt(t, s, "Bar", loc, nil)
		res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc})
		if err != nil || !res.Accepted {
			t.Fatalf("stop %d: %+v %v", i, res, err)
		}
		badges = append(badges, res.NewBadges...)
		clock.Advance(20 * time.Minute)
	}
	if !contains(badges, "Crunked") {
		t.Errorf("badges = %v, want Crunked after 4 stops in a night", badges)
	}
}

func TestBadgesAwardedOnce(t *testing.T) {
	s, clock := newTestService()
	u := s.RegisterUser("A", "", "Lincoln")
	loc := mustCity(t, "Lincoln")
	v := addVenueAt(t, s, "Spot", loc, nil)
	newbies := 0
	for i := 0; i < 3; i++ {
		res, err := s.CheckIn(CheckinRequest{UserID: u, VenueID: v, Reported: loc})
		if err != nil || !res.Accepted {
			t.Fatalf("check-in %d: %+v %v", i, res, err)
		}
		if contains(res.NewBadges, "Newbie") {
			newbies++
		}
		clock.Advance(2 * time.Hour)
	}
	if newbies != 1 {
		t.Errorf("Newbie awarded %d times, want 1", newbies)
	}
}

func TestStateCapsBounded(t *testing.T) {
	s := newUserState()
	t0 := simclock.Epoch()
	for i := 0; i < 100; i++ {
		s.observe(1, t0.Add(time.Duration(i)*time.Hour))
	}
	if len(s.venueTimes[1]) > stateVenueTimesCap {
		t.Errorf("venueTimes grew to %d, cap %d", len(s.venueTimes[1]), stateVenueTimesCap)
	}
	if len(s.recentTimes) > stateRecentTimesCap {
		t.Errorf("recentTimes grew to %d, cap %d", len(s.recentTimes), stateRecentTimesCap)
	}
}

func TestDefaultBadgeSetComplete(t *testing.T) {
	names := make(map[string]bool)
	for _, b := range DefaultBadges() {
		if b.Name == "" || b.Description == "" || b.Earned == nil {
			t.Errorf("badge %+v incompletely defined", b.Name)
		}
		if names[b.Name] {
			t.Errorf("duplicate badge %q", b.Name)
		}
		names[b.Name] = true
	}
	for _, want := range []string{"Newbie", "Adventurer", "Explorer", "Superstar", "Super User", "Bender", "Local", "Crunked"} {
		if !names[want] {
			t.Errorf("badge set missing %q", want)
		}
	}
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}
