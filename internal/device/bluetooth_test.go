package device

import (
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

func TestBluetoothReceiverReadsRoute(t *testing.T) {
	route := []geo.Point{
		{Lat: 37.7749, Lon: -122.4194},
		{Lat: 37.7800, Lon: -122.4100},
	}
	recv, err := NewBluetoothRoute(route, simclock.Epoch(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := recv.Read()
	if err != nil {
		t.Fatal(err)
	}
	if p1.DistanceMeters(route[0]) > 2 {
		t.Errorf("first fix %.1f m from waypoint 0", p1.DistanceMeters(route[0]))
	}
	// Advance through sentences; eventually waypoint 1 appears.
	var p2 geo.Point
	for i := 0; i < 4; i++ {
		p2, err = recv.Read()
		if err != nil {
			t.Fatal(err)
		}
	}
	if p2.DistanceMeters(route[1]) > 2 {
		t.Errorf("later fix %.1f m from waypoint 1", p2.DistanceMeters(route[1]))
	}
}

func TestBluetoothRouteValidation(t *testing.T) {
	if _, err := NewBluetoothRoute(nil, simclock.Epoch(), time.Second); err == nil {
		t.Error("empty route accepted")
	}
}

func TestBluetoothSpoofedCheckinEndToEnd(t *testing.T) {
	// The complete vector-2 attack: pair an iPhone with the simulated
	// receiver scripted to "be" in San Francisco, check in from
	// Nebraska.
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	sf, _ := geo.FindCity("San Francisco")
	venue, err := svc.AddVenue("Wharf", "", "San Francisco", sf.Center, nil)
	if err != nil {
		t.Fatal(err)
	}
	user := svc.RegisterUser("Mallory", "", "Lincoln")

	recv, err := NewBluetoothRoute([]geo.Point{sf.Center}, simclock.Epoch(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lincoln, _ := geo.FindCity("Lincoln")
	phone := NewPhone(OSIOS, NewHardwareGPS(lincoln.Center)) // closed-source OS!
	phone.PairExternalGPS(recv)

	app := NewClient(svc, user, phone.GPS())
	res, err := app.CheckIn(venue)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("NMEA-spoofed check-in denied: %s %s", res.Reason, res.Detail)
	}
}

func TestBluetoothReceiverHoldsLastFix(t *testing.T) {
	// Once parked at the final waypoint, repeated reads keep returning
	// the same (last good) fix — a parked receiver, not an error.
	route := []geo.Point{{Lat: 40.0, Lon: -96.0}}
	recv, err := NewBluetoothRoute(route, simclock.Epoch(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p, err := recv.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if p.DistanceMeters(route[0]) > 2 {
			t.Fatalf("read %d drifted %.1f m", i, p.DistanceMeters(route[0]))
		}
	}
}
