package device

import (
	"errors"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

func testWorld(t *testing.T) (*lbsn.Service, *simclock.Simulated, lbsn.UserID, lbsn.VenueID, geo.Point) {
	t.Helper()
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	u := svc.RegisterUser("Mallory", "", "Lincoln")
	sf, _ := geo.FindCity("San Francisco")
	v, err := svc.AddVenue("Fisherman's Wharf Sign", "Pier 39", "San Francisco", sf.Center, nil)
	if err != nil {
		t.Fatal(err)
	}
	return svc, clock, u, v, sf.Center
}

func TestHardwareGPSHonest(t *testing.T) {
	lincoln, _ := geo.FindCity("Lincoln")
	gps := NewHardwareGPS(lincoln.Center)
	got, err := gps.Read()
	if err != nil || got != lincoln.Center {
		t.Fatalf("Read = (%v, %v), want Lincoln", got, err)
	}
	sf, _ := geo.FindCity("San Francisco")
	gps.MoveTo(sf.Center)
	got, _ = gps.Read()
	if got != sf.Center {
		t.Errorf("after MoveTo: %v, want SF", got)
	}
}

func TestFakeGPSNoFixUntilSet(t *testing.T) {
	f := NewFakeGPS()
	if _, err := f.Read(); !errors.Is(err, ErrNoFix) {
		t.Errorf("unset fake GPS error = %v, want ErrNoFix", err)
	}
	p := geo.Point{Lat: 37.8, Lon: -122.4}
	f.Set(p)
	got, err := f.Read()
	if err != nil || got != p {
		t.Errorf("Read = (%v, %v), want %v", got, err, p)
	}
}

func TestHookGPSAPIOnlyOpenSource(t *testing.T) {
	fake := NewFakeGPS()
	android := NewPhone(OSAndroid, NewHardwareGPS(geo.Point{}))
	if err := android.HookGPSAPI(fake); err != nil {
		t.Errorf("android hook failed: %v", err)
	}
	iphone := NewPhone(OSIOS, NewHardwareGPS(geo.Point{}))
	if err := iphone.HookGPSAPI(fake); !errors.Is(err, ErrClosedSourcePath) {
		t.Errorf("iOS hook error = %v, want ErrClosedSourcePath", err)
	}
	bb := NewPhone(OSBlackberry, NewHardwareGPS(geo.Point{}))
	if err := bb.HookGPSAPI(fake); err == nil {
		t.Error("blackberry hook should fail (closed source)")
	}
}

func TestPairExternalGPSWorksOnClosedOS(t *testing.T) {
	// Vector 2 works even on iOS: the simulated Bluetooth receiver is
	// transparent to the OS.
	sim := NewFakeGPS()
	target := geo.Point{Lat: 37.8, Lon: -122.4}
	sim.Set(target)
	iphone := NewPhone(OSIOS, NewHardwareGPS(geo.Point{Lat: 40, Lon: -96}))
	iphone.PairExternalGPS(sim)
	got, err := iphone.GPS().Read()
	if err != nil || got != target {
		t.Errorf("paired GPS Read = (%v, %v), want %v", got, err, target)
	}
}

func TestEmulatorRequiresMarketHack(t *testing.T) {
	svc, _, u, _, _ := func() (*lbsn.Service, *simclock.Simulated, lbsn.UserID, lbsn.VenueID, geo.Point) {
		clock := simclock.NewSimulated(simclock.Epoch())
		svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
		return svc, clock, svc.RegisterUser("M", "", ""), 0, geo.Point{}
	}()
	emu := NewEmulator()
	if _, err := emu.InstallClient(svc, u); !errors.Is(err, ErrMarketDisabled) {
		t.Errorf("stock emulator install error = %v, want ErrMarketDisabled", err)
	}
	emu.RestoreFullImage()
	if !emu.MarketEnabled() {
		t.Error("market should be enabled after full-image restore")
	}
	if _, err := emu.InstallClient(svc, u); err != nil {
		t.Errorf("post-hack install failed: %v", err)
	}
}

func TestEmulatorGeoFix(t *testing.T) {
	emu := NewEmulator()
	if _, err := emu.Read(); !errors.Is(err, ErrNoFix) {
		t.Errorf("no-fix error = %v, want ErrNoFix", err)
	}
	gg := geo.Point{Lat: 37.8199, Lon: -122.4783} // Golden Gate Bridge (Fig B.3)
	emu.SetGeoFix(gg)
	got, err := emu.Read()
	if err != nil || got != gg {
		t.Errorf("Read = (%v, %v), want %v", got, err, gg)
	}
}

func TestClientCheckInReportsGPSReading(t *testing.T) {
	svc, _, u, v, sfLoc := testWorld(t)
	// Honest device physically in Lincoln: GPS verification rejects the
	// distant claim.
	lincoln, _ := geo.FindCity("Lincoln")
	honest := NewClient(svc, u, NewHardwareGPS(lincoln.Center))
	res, err := honest.CheckIn(v)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted || res.Reason != lbsn.DenyGPSMismatch {
		t.Fatalf("honest distant check-in = %+v, want gps-mismatch denial", res)
	}
	// Spoofed device "at" the venue: accepted.
	fake := NewFakeGPS()
	fake.Set(sfLoc)
	spoofed := NewClient(svc, u, fake)
	res, err = spoofed.CheckIn(v)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("spoofed check-in denied: %+v", res)
	}
}

func TestClientNoFixPropagates(t *testing.T) {
	svc, _, u, v, _ := testWorld(t)
	c := NewClient(svc, u, NewFakeGPS())
	if _, err := c.CheckIn(v); !errors.Is(err, ErrNoFix) {
		t.Errorf("CheckIn error = %v, want ErrNoFix", err)
	}
	if _, err := c.NearbyVenues(1000, 5); !errors.Is(err, ErrNoFix) {
		t.Errorf("NearbyVenues error = %v, want ErrNoFix", err)
	}
	if _, _, err := c.CheckInNearest(); !errors.Is(err, ErrNoFix) {
		t.Errorf("CheckInNearest error = %v, want ErrNoFix", err)
	}
}

func TestClientNearbyAndNearest(t *testing.T) {
	svc, _, u, v, sfLoc := testWorld(t)
	fake := NewFakeGPS()
	fake.Set(sfLoc.Destination(90, 100))
	c := NewClient(svc, u, fake)
	venues, err := c.NearbyVenues(1000, 10)
	if err != nil || len(venues) != 1 || venues[0].ID != v {
		t.Fatalf("NearbyVenues = (%v, %v), want the wharf venue", venues, err)
	}
	got, res, err := c.CheckInNearest()
	if err != nil || !res.Accepted || got.ID != v {
		t.Fatalf("CheckInNearest = (%+v, %+v, %v)", got, res, err)
	}
}

func TestCheckInNearestNoVenues(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	u := svc.RegisterUser("M", "", "")
	fake := NewFakeGPS()
	fake.Set(geo.Point{Lat: 40, Lon: -96})
	c := NewClient(svc, u, fake)
	if _, _, err := c.CheckInNearest(); !errors.Is(err, ErrNoNearbyVenue) {
		t.Errorf("empty world CheckInNearest error = %v, want ErrNoNearbyVenue", err)
	}
}

func TestAllSpoofMethodsIndistinguishable(t *testing.T) {
	// E1's core claim: every vector produces an accepted check-in at a
	// venue ~2500 km from the attacker.
	for _, method := range AllSpoofMethods() {
		t.Run(method.String(), func(t *testing.T) {
			svc, _, u, v, sfLoc := testWorld(t)
			res, err := SpoofedCheckin(method, svc, u, v, sfLoc)
			if err != nil {
				t.Fatalf("SpoofedCheckin: %v", err)
			}
			if !res.Accepted {
				t.Fatalf("vector %s denied: %+v", method, res)
			}
			if res.PointsEarned == 0 {
				t.Errorf("vector %s earned no points", method)
			}
		})
	}
}

func TestSpoofedCheckinUnknownMethod(t *testing.T) {
	svc, _, u, v, loc := testWorld(t)
	if _, err := SpoofedCheckin(SpoofMethod(99), svc, u, v, loc); err == nil {
		t.Error("unknown method should error")
	}
}

func TestSpoofMethodStrings(t *testing.T) {
	want := map[SpoofMethod]string{
		SpoofGPSAPI:    "gps-api-hook",
		SpoofGPSModule: "gps-module-sim",
		SpoofServerAPI: "server-api",
		SpoofEmulator:  "device-emulator",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if SpoofMethod(42).String() == "" {
		t.Error("unknown method String must be non-empty")
	}
	if OSAndroid.String() != "android" || OSIOS.String() != "ios" || OSBlackberry.String() != "blackberry" {
		t.Error("OS strings wrong")
	}
	if OS(42).String() == "" {
		t.Error("unknown OS String must be non-empty")
	}
}

func TestMayorAttackEndToEnd(t *testing.T) {
	// Full E1 narrative: emulator hack -> install -> geo fix -> daily
	// check-ins -> mayorship, all from 2500 km away.
	svc, clock, u, v, sfLoc := testWorld(t)
	emu := NewEmulator()
	emu.RestoreFullImage()
	client, err := emu.InstallClient(svc, u)
	if err != nil {
		t.Fatal(err)
	}
	emu.SetGeoFix(sfLoc)
	became := false
	for day := 0; day < 4; day++ {
		res, err := client.CheckIn(v)
		if err != nil || !res.Accepted {
			t.Fatalf("day %d: %+v %v", day, res, err)
		}
		became = became || res.BecameMayor
		clock.Advance(24 * time.Hour)
	}
	if !became || svc.Mayor(v) != u {
		t.Errorf("attacker mayor=%v current=%d, want mayorship", became, svc.Mayor(v))
	}
}
