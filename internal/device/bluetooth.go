package device

import (
	"fmt"
	"sync"
	"time"

	"locheat/internal/geo"
	"locheat/internal/nmea"
)

// BluetoothReceiver adapts a simulated NMEA GPS receiver (the §3.1
// vector-2 tool — "a program on a computer that simulates the behavior
// of a Bluetooth GPS receiver") into the GPSModule interface the
// client app reads. Each Read pulls the next NMEA sentence from the
// simulator and decodes it, exactly as a phone's Bluetooth GPS stack
// would.
type BluetoothReceiver struct {
	mu   sync.Mutex
	sim  *nmea.Simulator
	last geo.Point
	has  bool
}

var _ GPSModule = (*BluetoothReceiver)(nil)

// NewBluetoothReceiver wraps a scripted NMEA simulator.
func NewBluetoothReceiver(sim *nmea.Simulator) *BluetoothReceiver {
	return &BluetoothReceiver{sim: sim}
}

// NewBluetoothRoute is a convenience that scripts a waypoint route
// directly.
func NewBluetoothRoute(route []geo.Point, start time.Time, interval time.Duration) (*BluetoothReceiver, error) {
	sim, err := nmea.NewSimulator(route, start, interval)
	if err != nil {
		return nil, fmt.Errorf("bluetooth receiver: %w", err)
	}
	return NewBluetoothReceiver(sim), nil
}

// Read pulls and decodes the next sentence. Undecodable or no-fix
// sentences fall back to the last good fix; with none yet, ErrNoFix.
func (b *BluetoothReceiver) Read() (geo.Point, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	fix, err := nmea.Parse(b.sim.Next())
	if err == nil && fix.Valid {
		b.last = fix.Point
		b.has = true
	}
	if !b.has {
		return geo.Point{}, ErrNoFix
	}
	return b.last, nil
}
