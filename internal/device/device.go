// Package device models the client side of the attack surface: a
// smartphone with a GPS module, the LBSN client application that reads
// it, and the four location-spoofing vectors of §3.1:
//
//  1. GPS API hook — the open-source OS's location APIs are modified
//     to return coordinates from an attacker-controlled source.
//  2. GPS module simulation — a simulated (e.g. Bluetooth) GPS
//     receiver feeds fake fixes, transparent to the OS.
//  3. Server API — the service's public developer API is called
//     directly with forged coordinates, bypassing the client app.
//  4. Device emulator — the manufacturer's emulator accepts a command
//     (Dalvik Debug Monitor / "geo fix") that sets its virtual GPS.
//
// All four reduce to the same server-visible outcome — the check-in
// request carries coordinates the attacker chose — which is precisely
// the paper's point: verification that trusts the client cannot
// distinguish them.
package device

import (
	"errors"
	"fmt"
	"sync"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
)

// Errors callers can match.
var (
	ErrNoFix            = errors.New("device: GPS has no fix")
	ErrMarketDisabled   = errors.New("device: emulator app market disabled (hack the emulator first, §3.1)")
	ErrAppNotInstalled  = errors.New("device: client application not installed")
	ErrNoNearbyVenue    = errors.New("device: no venue near the reported location")
	ErrClosedSourcePath = errors.New("device: cannot hook GPS APIs on a closed-source OS")
)

// GPSModule is the interface the client application reads coordinates
// from. Implementations must be safe for concurrent use.
type GPSModule interface {
	// Read returns the current fix.
	Read() (geo.Point, error)
}

// HardwareGPS is an honest GPS module: it reports the device's true
// physical position, which the experiment harness moves around.
type HardwareGPS struct {
	mu  sync.RWMutex
	pos geo.Point
	fix bool
}

var _ GPSModule = (*HardwareGPS)(nil)

// NewHardwareGPS returns a module with a fix at the given position.
func NewHardwareGPS(pos geo.Point) *HardwareGPS {
	return &HardwareGPS{pos: pos, fix: true}
}

// MoveTo physically relocates the device.
func (g *HardwareGPS) MoveTo(p geo.Point) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.pos = p
	g.fix = true
}

// Read returns the true position.
func (g *HardwareGPS) Read() (geo.Point, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if !g.fix {
		return geo.Point{}, ErrNoFix
	}
	return g.pos, nil
}

// OS identifies a smartphone operating system; only open-source
// systems admit the GPS API hook (§3.1: "it is difficult to modify a
// closed source system like iOS").
type OS int

// Supported operating systems.
const (
	OSAndroid OS = iota + 1
	OSIOS
	OSBlackberry
)

// String names the OS.
func (o OS) String() string {
	switch o {
	case OSAndroid:
		return "android"
	case OSIOS:
		return "ios"
	case OSBlackberry:
		return "blackberry"
	default:
		return fmt.Sprintf("os(%d)", int(o))
	}
}

// OpenSource reports whether the OS's GPS APIs can be modified.
func (o OS) OpenSource() bool { return o == OSAndroid }

// Phone is a smartphone: an OS plus the GPS module its apps read.
type Phone struct {
	os  OS
	mu  sync.Mutex
	gps GPSModule
}

// NewPhone assembles a phone around a GPS module.
func NewPhone(os OS, gps GPSModule) *Phone {
	return &Phone{os: os, gps: gps}
}

// OS returns the phone's operating system.
func (p *Phone) OS() OS { return p.os }

// GPS returns the module apps currently read.
func (p *Phone) GPS() GPSModule {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gps
}

// HookGPSAPI replaces the OS location APIs with an attacker-supplied
// source (spoofing vector 1). Fails on closed-source systems.
func (p *Phone) HookGPSAPI(fake GPSModule) error {
	if !p.os.OpenSource() {
		return fmt.Errorf("hook GPS API on %s: %w", p.os, ErrClosedSourcePath)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gps = fake
	return nil
}

// PairExternalGPS connects a simulated external (e.g. Bluetooth) GPS
// receiver (spoofing vector 2). This works on any OS — the fake device
// is transparent to the system.
func (p *Phone) PairExternalGPS(sim GPSModule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gps = sim
}

// FakeGPS is an attacker-controlled GPS source usable both as an API
// hook and as a simulated external receiver: it replays whatever
// coordinates were last loaded, mimicking the "from a server that
// returns fake GPS coordinates, or simply from a local file" sources
// of §3.1.
type FakeGPS struct {
	mu  sync.RWMutex
	pos geo.Point
	set bool
}

var _ GPSModule = (*FakeGPS)(nil)

// NewFakeGPS returns an empty fake source; Set must be called before
// Read succeeds.
func NewFakeGPS() *FakeGPS { return &FakeGPS{} }

// Set loads the coordinates the source will report.
func (f *FakeGPS) Set(p geo.Point) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pos = p
	f.set = true
}

// Read returns the loaded coordinates.
func (f *FakeGPS) Read() (geo.Point, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if !f.set {
		return geo.Point{}, ErrNoFix
	}
	return f.pos, nil
}

// Emulator models the manufacturer device emulator (spoofing vector 4,
// the one the paper used for its experiments). Out of the box the
// emulator has no app market — the paper "bypassed this limitation by
// using a full system recovery image" — so InstallApp fails until
// RestoreFullImage is called. SetGeoFix is the Dalvik Debug Monitor
// command that sets the virtual GPS.
type Emulator struct {
	mu            sync.RWMutex
	marketEnabled bool
	fix           geo.Point
	hasFix        bool
}

var _ GPSModule = (*Emulator)(nil)

// NewEmulator returns a stock emulator (no market, no fix).
func NewEmulator() *Emulator { return &Emulator{} }

// RestoreFullImage flashes a full system recovery image, restoring the
// app market (§3.1's emulator hack).
func (e *Emulator) RestoreFullImage() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.marketEnabled = true
}

// MarketEnabled reports whether apps can be installed.
func (e *Emulator) MarketEnabled() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.marketEnabled
}

// SetGeoFix sets the simulated GPS coordinates, as the Dalvik Debug
// Monitor does in Fig B.3.
func (e *Emulator) SetGeoFix(p geo.Point) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fix = p
	e.hasFix = true
}

// Read returns the last geo fix.
func (e *Emulator) Read() (geo.Point, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.hasFix {
		return geo.Point{}, ErrNoFix
	}
	return e.fix, nil
}

// InstallClient installs the LBSN client application on the emulator,
// failing if the market hack has not been applied.
func (e *Emulator) InstallClient(svc *lbsn.Service, user lbsn.UserID) (*Client, error) {
	if !e.MarketEnabled() {
		return nil, ErrMarketDisabled
	}
	return NewClient(svc, user, e), nil
}

// Client is the LBSN client application: it reads whatever GPS source
// the device exposes and submits check-ins carrying that reading —
// confirmed in §3.1 by source inspection ("it gets the GPS location
// data from the phone's GPS-related APIs").
type Client struct {
	svc  *lbsn.Service
	user lbsn.UserID
	gps  GPSModule
}

// NewClient binds the app to a service account and a GPS source.
func NewClient(svc *lbsn.Service, user lbsn.UserID, gps GPSModule) *Client {
	return &Client{svc: svc, user: user, gps: gps}
}

// UserID returns the logged-in account.
func (c *Client) UserID() lbsn.UserID { return c.user }

// NearbyVenues shows the app's suggested venue list around the current
// GPS reading.
func (c *Client) NearbyVenues(radiusMeters float64, limit int) ([]lbsn.VenueView, error) {
	pos, err := c.gps.Read()
	if err != nil {
		return nil, fmt.Errorf("nearby venues: %w", err)
	}
	return c.svc.NearbyVenues(pos, radiusMeters, limit), nil
}

// CheckIn submits a check-in to the venue, reporting the device's
// current GPS reading.
func (c *Client) CheckIn(venue lbsn.VenueID) (lbsn.CheckinResult, error) {
	pos, err := c.gps.Read()
	if err != nil {
		return lbsn.CheckinResult{}, fmt.Errorf("check-in: %w", err)
	}
	return c.svc.CheckIn(lbsn.CheckinRequest{UserID: c.user, VenueID: venue, Reported: pos})
}

// CheckInNearest finds the venue closest to the current GPS reading
// and checks in there — the core step of the §3.3 automated tour.
func (c *Client) CheckInNearest() (lbsn.VenueView, lbsn.CheckinResult, error) {
	pos, err := c.gps.Read()
	if err != nil {
		return lbsn.VenueView{}, lbsn.CheckinResult{}, fmt.Errorf("check-in nearest: %w", err)
	}
	v, ok := c.svc.NearestVenue(pos)
	if !ok {
		return lbsn.VenueView{}, lbsn.CheckinResult{}, ErrNoNearbyVenue
	}
	res, err := c.svc.CheckIn(lbsn.CheckinRequest{UserID: c.user, VenueID: v.ID, Reported: pos})
	return v, res, err
}

// ServerAPI is spoofing vector 3: the public developer API, called
// directly with arbitrary coordinates ("these APIs can be employed by
// a location cheater to check into a place ... more convenient to
// issue a large-scale cheating attack").
type ServerAPI struct {
	svc *lbsn.Service
}

// NewServerAPI wraps the service's developer API surface.
func NewServerAPI(svc *lbsn.Service) *ServerAPI { return &ServerAPI{svc: svc} }

// CheckIn submits a check-in with caller-chosen coordinates.
func (a *ServerAPI) CheckIn(user lbsn.UserID, venue lbsn.VenueID, at geo.Point) (lbsn.CheckinResult, error) {
	return a.svc.CheckIn(lbsn.CheckinRequest{UserID: user, VenueID: venue, Reported: at})
}

// SpoofMethod enumerates the four §3.1 vectors.
type SpoofMethod int

// The four vectors, in the paper's order.
const (
	SpoofGPSAPI SpoofMethod = iota + 1
	SpoofGPSModule
	SpoofServerAPI
	SpoofEmulator
)

// String names the method.
func (m SpoofMethod) String() string {
	switch m {
	case SpoofGPSAPI:
		return "gps-api-hook"
	case SpoofGPSModule:
		return "gps-module-sim"
	case SpoofServerAPI:
		return "server-api"
	case SpoofEmulator:
		return "device-emulator"
	default:
		return fmt.Sprintf("spoof(%d)", int(m))
	}
}

// SpoofedCheckin is a uniform harness over all four vectors: it makes
// user check in at the venue while pretending to be at fakeLoc,
// regardless of where the device physically is. Used by the E1
// experiment to show all vectors are server-indistinguishable.
func SpoofedCheckin(method SpoofMethod, svc *lbsn.Service, user lbsn.UserID, venue lbsn.VenueID, fakeLoc geo.Point) (lbsn.CheckinResult, error) {
	switch method {
	case SpoofGPSAPI:
		phone := NewPhone(OSAndroid, NewHardwareGPS(geo.Point{Lat: 40.81, Lon: -96.70}))
		fake := NewFakeGPS()
		fake.Set(fakeLoc)
		if err := phone.HookGPSAPI(fake); err != nil {
			return lbsn.CheckinResult{}, err
		}
		return NewClient(svc, user, phone.GPS()).CheckIn(venue)
	case SpoofGPSModule:
		phone := NewPhone(OSIOS, NewHardwareGPS(geo.Point{Lat: 40.81, Lon: -96.70}))
		sim := NewFakeGPS()
		sim.Set(fakeLoc)
		phone.PairExternalGPS(sim)
		return NewClient(svc, user, phone.GPS()).CheckIn(venue)
	case SpoofServerAPI:
		return NewServerAPI(svc).CheckIn(user, venue, fakeLoc)
	case SpoofEmulator:
		emu := NewEmulator()
		emu.RestoreFullImage()
		emu.SetGeoFix(fakeLoc)
		client, err := emu.InstallClient(svc, user)
		if err != nil {
			return lbsn.CheckinResult{}, err
		}
		return client.CheckIn(venue)
	default:
		return lbsn.CheckinResult{}, fmt.Errorf("unknown spoof method %d", int(method))
	}
}

// AllSpoofMethods lists the vectors for table-driven experiments.
func AllSpoofMethods() []SpoofMethod {
	return []SpoofMethod{SpoofGPSAPI, SpoofGPSModule, SpoofServerAPI, SpoofEmulator}
}
