package backpressure

import (
	"testing"
	"time"

	"locheat/internal/obs"
	"locheat/internal/simclock"
)

func newTestBreaker(clock simclock.Clock) *Breaker {
	return NewBreaker(BreakerConfig{
		FailureThreshold: 3,
		OpenFor:          2 * time.Second,
		HalfOpenProbes:   1,
		Clock:            clock,
	})
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	sim := simclock.NewSimulated(simclock.Epoch())
	b := newTestBreaker(sim)

	if got := b.State(); got != StateClosed {
		t.Fatalf("new breaker state = %v, want closed", got)
	}
	// Failures below the threshold keep the circuit closed.
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("closed breaker under threshold must allow")
	}
	// A success resets the streak: two more failures still don't trip.
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after reset + 2 failures = %v, want closed", got)
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker inside the window must reject")
	}
	if b.rejected.Load() != 1 {
		t.Fatalf("rejected = %d, want 1", b.rejected.Load())
	}
}

func TestBreakerHalfOpenProbeSuccessCloses(t *testing.T) {
	sim := simclock.NewSimulated(simclock.Epoch())
	b := newTestBreaker(sim)
	for i := 0; i < 3; i++ {
		b.Failure()
	}

	// The open window rejects; elapsing it admits exactly one probe.
	if b.Allow() {
		t.Fatal("open breaker must reject before OpenFor elapses")
	}
	sim.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("elapsed open window must admit a half-open probe")
	}
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", got)
	}
	if b.Allow() {
		t.Fatal("second concurrent probe must be rejected (HalfOpenProbes=1)")
	}
	b.Success()
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	sim := simclock.NewSimulated(simclock.Epoch())
	b := newTestBreaker(sim)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	sim.Advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("want half-open probe")
	}
	b.Failure()
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The window restarts from the failed probe: still rejecting 1s in,
	// admitting again after the full OpenFor.
	sim.Advance(time.Second)
	if b.Allow() {
		t.Fatal("re-opened breaker must reject inside the fresh window")
	}
	sim.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("re-opened breaker must probe after the fresh window elapses")
	}
	if b.opens.Load() != 2 {
		t.Fatalf("opens = %d, want 2", b.opens.Load())
	}
}

func TestBreakerStragglerFailureWhileOpen(t *testing.T) {
	sim := simclock.NewSimulated(simclock.Epoch())
	b := newTestBreaker(sim)
	for i := 0; i < 3; i++ {
		b.Failure()
	}
	sim.Advance(time.Second)
	// A late failure report from before the trip must not restart the
	// open window.
	b.Failure()
	sim.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("straggler failure must not extend the open window")
	}
}

func TestBreakerNilIsAlwaysClosed(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must allow")
	}
	b.Success() // must not panic
	b.Failure()
	if got := b.State(); got != StateClosed {
		t.Fatalf("nil breaker state = %v, want closed", got)
	}
}

func TestBreakerGroupSharedCounters(t *testing.T) {
	sim := simclock.NewSimulated(simclock.Epoch())
	reg := obs.NewRegistry()
	g := NewBreakerGroup("forward", BreakerConfig{
		FailureThreshold: 1, OpenFor: time.Minute, Clock: sim,
	}, reg)

	if g.For("n2") != g.For("n2") {
		t.Fatal("For must return the same breaker per peer")
	}
	bN2, bN3 := g.For("n2"), g.For("n3")
	bN2.Failure()
	bN3.Failure()
	for i := 0; i < 4; i++ {
		bN2.Allow()
	}
	bN3.Allow()

	if got := g.rejected.Value(); got != 5 {
		t.Fatalf("group rejected counter = %d, want 5 (4 from n2 + 1 from n3)", got)
	}
	if got := g.transitions[StateOpen].Value(); got != 2 {
		t.Fatalf("open transitions = %d, want 2", got)
	}
	status := g.Status()
	if len(status) != 2 {
		t.Fatalf("status entries = %d, want 2", len(status))
	}
	for _, st := range status {
		if !st.Open() || st.State != "open" {
			t.Fatalf("peer %s status = %+v, want open", st.Peer, st)
		}
		if st.Path != "forward" {
			t.Fatalf("status path = %q, want forward", st.Path)
		}
	}
}

func TestNilGroupFor(t *testing.T) {
	var g *BreakerGroup
	if b := g.For("anyone"); b != nil {
		t.Fatalf("nil group For = %v, want nil breaker", b)
	}
	if st := g.Status(); st != nil {
		t.Fatalf("nil group Status = %v, want nil", st)
	}
}

func TestMonitorMaxAcrossStages(t *testing.T) {
	depthA, depthB := 10, 90
	m := NewMonitor(
		Stage{Name: "a", Sample: func() (int, int) { return depthA, 100 }},
		Stage{Name: "empty", Sample: func() (int, int) { return 0, 0 }}, // skipped: no capacity
	)
	m.Add(Stage{Name: "b", Sample: func() (int, int) { return depthB, 100 }})

	samples, util, hot := m.Sample()
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2 (capacityless stage skipped)", len(samples))
	}
	if util != 0.9 || hot != "b" {
		t.Fatalf("util, hot = %v, %q; want 0.9, \"b\" (max, not average)", util, hot)
	}
	depthB = 0
	_, util, hot = m.Sample()
	if util != 0.1 || hot != "a" {
		t.Fatalf("after b drains: util, hot = %v, %q; want 0.1, \"a\"", util, hot)
	}
}
