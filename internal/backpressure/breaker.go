// Package backpressure is the admission/degradation layer the load
// harness (cmd/loadgen) demanded: the tiers it protects keep their
// never-block contract, but instead of silently hitting drop-on-full
// queues under sustained overload, the system now degrades on purpose
// and visibly —
//
//   - Monitor samples per-stage queue depths (shard rings, DLQ, peer
//     forward queues) into a single utilization figure;
//   - Admission turns that figure into an adaptive admit/shed decision
//     at API ingest (429 + Retry-After), shedding by priority: repeat
//     "dedupe-cheap" traffic first, fresh check-ins under real
//     pressure, denied-claim/alert evidence never;
//   - Breaker wraps the cross-node clients (forward, ship, quarbcast)
//     with a circuit breaker so a dead peer costs one fast-fail — and
//     a spill to the outbox — instead of a blocking timeout per batch.
//
// The shapes are the classic streamz idioms (see DESIGN.md §
// "Backpressure"): a three-state breaker with half-open probing, a
// dropping buffer that counts what it refuses, and depth monitors
// feeding a controller. Everything here is dependency-free and
// deterministic under internal/simclock.
package backpressure

import (
	"sync"
	"sync/atomic"
	"time"

	"locheat/internal/obs"
	"locheat/internal/simclock"
)

// BreakerState is the circuit's position. The zero value is Closed
// (requests flow).
type BreakerState int32

const (
	// StateClosed passes requests through while counting consecutive
	// failures.
	StateClosed BreakerState = iota
	// StateHalfOpen lets a bounded number of probe requests through;
	// one success closes the circuit, one failure re-opens it.
	StateHalfOpen
	// StateOpen rejects every request until OpenFor has elapsed.
	StateOpen
)

// String names the state for labels and status JSON.
func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes one breaker (or every breaker in a group). Zero
// values take defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the
	// circuit (default 5).
	FailureThreshold int
	// OpenFor is how long an open circuit rejects before letting a
	// half-open probe through (default 2s).
	OpenFor time.Duration
	// HalfOpenProbes bounds concurrent in-flight probes while
	// half-open (default 1).
	HalfOpenProbes int
	// Clock times the open window; simulated clocks make transition
	// tests deterministic (default wall clock).
	Clock simclock.Clock
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.Clock == nil {
		c.Clock = simclock.Real{}
	}
	return c
}

// Breaker is a three-state circuit breaker: Closed → (threshold
// consecutive failures) → Open → (OpenFor elapses) → HalfOpen →
// (probe success) → Closed, or (probe failure) → Open again.
//
// Allow is the hot path: on a closed circuit it is one atomic load.
// The caller reports every attempt's outcome with Success/Failure —
// without a report a half-open probe slot stays occupied, so wrap the
// guarded call in exactly one Allow/report pair.
type Breaker struct {
	cfg BreakerConfig

	// state is read lock-free by Allow's fast path; transitions happen
	// under mu so the bookkeeping (fails, openedAt, probes) stays
	// consistent.
	state atomic.Int32
	mu    sync.Mutex
	fails int
	// openedAt is when the circuit last opened; the open window is
	// measured from it.
	openedAt time.Time
	// probes counts in-flight half-open probes.
	probes int

	opens    atomic.Uint64
	rejected atomic.Uint64

	// onTransition/onReject (set by the group) feed the shared path-
	// level counters; onTransition is called under mu.
	onTransition func(to BreakerState)
	onReject     func()
}

// noteReject counts a rejection on the breaker and its group.
func (b *Breaker) noteReject() {
	b.rejected.Add(1)
	if b.onReject != nil {
		b.onReject()
	}
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State reports the circuit's current position.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return StateClosed
	}
	return BreakerState(b.state.Load())
}

// Allow reports whether a request may proceed. Open circuits reject
// (counted) until OpenFor has elapsed, then admit probes one at a
// time. Every true return must be matched by exactly one Success or
// Failure call. A nil breaker always allows — breakers are optional
// exactly like nil obs handles.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	switch BreakerState(b.state.Load()) {
	case StateClosed:
		return true
	case StateOpen:
		b.mu.Lock()
		defer b.mu.Unlock()
		// Re-check under the lock: another caller may have transitioned.
		if BreakerState(b.state.Load()) != StateOpen {
			return b.allowLocked()
		}
		if b.cfg.Clock.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			b.noteReject()
			return false
		}
		b.transitionLocked(StateHalfOpen)
		b.probes = 1
		return true
	default: // half-open
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.allowLocked()
	}
}

// allowLocked is the half-open/closed admit under an already-held mu.
func (b *Breaker) allowLocked() bool {
	switch BreakerState(b.state.Load()) {
	case StateClosed:
		return true
	case StateHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true
		}
		b.noteReject()
		return false
	default:
		b.noteReject()
		return false
	}
}

// Success reports a guarded call that completed: it resets the
// failure streak and, from half-open, closes the circuit.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	switch BreakerState(b.state.Load()) {
	case StateHalfOpen:
		b.probes = 0
		b.transitionLocked(StateClosed)
	}
}

// Failure reports a guarded call that failed: it extends the streak
// and trips the circuit at the threshold; a failed half-open probe
// re-opens immediately (the peer is still down — restart the window).
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch BreakerState(b.state.Load()) {
	case StateClosed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.openLocked()
		}
	case StateHalfOpen:
		b.probes = 0
		b.openLocked()
	case StateOpen:
		// A straggler report from before the trip; the window restarts
		// would over-penalize, so ignore it.
	}
}

func (b *Breaker) openLocked() {
	b.fails = 0
	b.openedAt = b.cfg.Clock.Now()
	b.opens.Add(1)
	b.transitionLocked(StateOpen)
}

func (b *Breaker) transitionLocked(to BreakerState) {
	b.state.Store(int32(to))
	if b.onTransition != nil {
		b.onTransition(to)
	}
}

// BreakerStatus is one breaker's externally visible state.
type BreakerStatus struct {
	Path     string       `json:"path"`
	Peer     string       `json:"peer"`
	State    string       `json:"state"`
	Opens    uint64       `json:"opens"`
	Rejected uint64       `json:"rejected"`
	state    BreakerState // for sorting/tests
}

// Open reports whether the status snapshot shows a non-closed circuit.
func (s BreakerStatus) Open() bool { return s.state != StateClosed }

// BreakerGroup manages one breaker per peer for a named client path
// ("forward", "ship", "quarbcast"). Get-or-create keyed by peer; the
// peer set is bounded (cluster membership), so the per-peer telemetry
// series stay bounded too.
type BreakerGroup struct {
	path string
	cfg  BreakerConfig

	mu sync.Mutex
	m  map[string]*Breaker

	reg         *obs.Registry
	rejected    *obs.Counter
	transitions map[BreakerState]*obs.Counter
}

// NewBreakerGroup builds a group for path, registering its telemetry
// on reg (nil runs unobserved): rejected-call and transition counters
// labelled by path, plus a per-peer state gauge.
func NewBreakerGroup(path string, cfg BreakerConfig, reg *obs.Registry) *BreakerGroup {
	g := &BreakerGroup{
		path: path,
		cfg:  cfg.withDefaults(),
		m:    make(map[string]*Breaker),
		reg:  reg,
	}
	if reg != nil {
		g.rejected = reg.Counter("locheat_breaker_rejected_total",
			"calls fast-failed by an open circuit breaker", "path", path)
		g.transitions = map[BreakerState]*obs.Counter{}
		for _, st := range [...]BreakerState{StateClosed, StateHalfOpen, StateOpen} {
			g.transitions[st] = reg.Counter("locheat_breaker_transitions_total",
				"circuit breaker state transitions", "path", path, "to", st.String())
		}
	}
	return g
}

// For returns (creating if needed) the breaker guarding peer.
func (g *BreakerGroup) For(peer string) *Breaker {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if b, ok := g.m[peer]; ok {
		return b
	}
	b := NewBreaker(g.cfg)
	b.onTransition = func(to BreakerState) {
		if g.transitions != nil {
			g.transitions[to].Inc()
		}
	}
	b.onReject = g.rejected.Inc
	g.m[peer] = b
	if g.reg != nil {
		g.reg.GaugeFunc("locheat_breaker_state",
			"circuit position: 0 closed, 1 half-open, 2 open",
			func() float64 { return float64(b.state.Load()) },
			"path", g.path, "peer", peer)
	}
	return b
}

// Status snapshots every breaker in the group.
func (g *BreakerGroup) Status() []BreakerStatus {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]BreakerStatus, 0, len(g.m))
	for peer, b := range g.m {
		st := b.State()
		out = append(out, BreakerStatus{
			Path:     g.path,
			Peer:     peer,
			State:    st.String(),
			Opens:    b.opens.Load(),
			Rejected: b.rejected.Load(),
			state:    st,
		})
	}
	return out
}
