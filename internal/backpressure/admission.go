package backpressure

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"locheat/internal/obs"
	"locheat/internal/simclock"
)

// Priority classes traffic at the admission edge. Shedding is strictly
// ordered: Low goes first (repeat "dedupe-cheap" check-ins the
// detectors learn almost nothing from), Normal sheds probabilistically
// as severity grows, Critical — denied-claim evidence and alert reads —
// is never shed.
type Priority int32

const (
	// PriorityLow is dedupe-cheap traffic: a user re-claiming the same
	// venue within the repeat window. First to shed.
	PriorityLow Priority = iota
	// PriorityNormal is a fresh check-in claim.
	PriorityNormal
	// PriorityCritical is evidence the paper's detection pipeline must
	// not lose: check-ins from already-quarantined users (the denied-
	// claim path) and alert/quarantine surfaces. Never shed.
	PriorityCritical

	numPriorities = 3
)

// String names the priority for metric labels.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// AdmissionConfig tunes the controller. Zero values take defaults.
type AdmissionConfig struct {
	// Monitor supplies the per-stage depth samples.
	Monitor *Monitor
	// HighWater is the smoothed utilization at which shedding engages
	// (default 0.85); LowWater is where it releases (default 0.5). The
	// gap is the hysteresis band that stops the controller flapping at
	// the boundary.
	HighWater float64
	LowWater  float64
	// Interval is the background sampling cadence (default 50ms).
	// Negative disables the background goroutine; tests then drive the
	// controller deterministically with Tick.
	Interval time.Duration
	// RetryAfter is the base client backoff hint (default 1s); the
	// advertised value scales up with severity.
	RetryAfter time.Duration
	// RepeatWindow is how recently a (user, venue) pair must have been
	// seen for the next claim to classify as dedupe-cheap PriorityLow
	// (default 60s).
	RepeatWindow time.Duration
	// Clock is used for repeat-window timestamps (default wall clock).
	Clock simclock.Clock
	// Obs registers the admission telemetry (nil runs unobserved).
	Obs *obs.Registry
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.HighWater <= 0 || c.HighWater > 1 {
		c.HighWater = 0.85
	}
	if c.LowWater <= 0 || c.LowWater >= c.HighWater {
		c.LowWater = c.HighWater / 2
	}
	if c.Interval == 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RepeatWindow <= 0 {
		c.RepeatWindow = 60 * time.Second
	}
	if c.Clock == nil {
		c.Clock = simclock.Real{}
	}
	return c
}

// repeatSlots sizes the fixed fingerprint table the dedupe-cheap
// classifier uses: 64k packed uint64 slots (512 KiB), one hash-indexed
// read plus one store per check-in, no allocation, no locks. False
// sharing of a slot misclassifies at worst one claim's priority — an
// acceptable error for a shedding hint.
const repeatSlots = 1 << 16

// Decision is the outcome of one Admit call.
type Decision struct {
	OK bool
	// RetryAfter is the backoff to advertise when OK is false.
	RetryAfter time.Duration
}

// Admission is the adaptive controller at API ingest. A background
// sampler reads the Monitor every Interval, smooths the max stage
// utilization with an EWMA, and engages shedding above HighWater
// (releasing below LowWater). The Admit hot path is a single atomic
// load while the system is unsaturated — the overhead contract
// BenchmarkAdmissionOverhead pins.
type Admission struct {
	cfg AdmissionConfig

	// severity is 0 when disengaged, else 1..1000 (permille of the
	// shedding range). The Admit fast path is one load of this.
	severity atomic.Uint64
	// utilMilli is the smoothed utilization in permille, for gauges.
	utilMilli atomic.Uint64

	admitted [numPriorities]obs.Counter
	shed     [numPriorities]obs.Counter
	engages  obs.Counter

	repeat [repeatSlots]atomic.Uint64

	mu       sync.Mutex
	ewma     float64
	hotStage string
	samples  []StageSample

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewAdmission builds the controller and, unless Interval is negative,
// starts its background sampler. Close stops it.
func NewAdmission(cfg AdmissionConfig) *Admission {
	a := &Admission{
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if reg := a.cfg.Obs; reg != nil {
		reg.GaugeFunc("locheat_backpressure_utilization",
			"smoothed max queue utilization across monitored stages (0-1)",
			func() float64 { return float64(a.utilMilli.Load()) / 1000 })
		reg.GaugeFunc("locheat_backpressure_engaged",
			"1 while the admission controller is shedding, else 0",
			func() float64 {
				if a.severity.Load() > 0 {
					return 1
				}
				return 0
			})
		reg.CounterFunc("locheat_backpressure_engagements_total",
			"times the admission controller crossed the high-water mark and engaged",
			a.engages.Value)
		for p := PriorityLow; p <= PriorityCritical; p++ {
			p := p
			reg.CounterFunc("locheat_backpressure_admitted_total",
				"requests admitted at the API ingest edge",
				a.admitted[p].Value, "priority", p.String())
			reg.CounterFunc("locheat_backpressure_shed_total",
				"requests shed (429) at the API ingest edge",
				a.shed[p].Value, "priority", p.String())
		}
	}
	if a.cfg.Interval > 0 {
		go a.run()
	} else {
		close(a.done)
	}
	return a
}

func (a *Admission) run() {
	defer close(a.done)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			a.Tick()
		}
	}
}

// Close stops the background sampler. Safe to call twice; a nil
// Admission is a no-op (admission is optional like every obs handle).
func (a *Admission) Close() {
	if a == nil {
		return
	}
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
}

// Tick runs one sampling step: read the monitor, smooth, and update
// the engage/severity state. The background goroutine calls this every
// Interval; tests call it directly.
func (a *Admission) Tick() {
	if a == nil {
		return
	}
	samples, util, hot := a.cfg.Monitor.Sample()

	a.mu.Lock()
	defer a.mu.Unlock()
	// EWMA with alpha 0.3: a few ticks of real pressure to engage, a
	// few ticks of drain to release — transient single-sample spikes
	// (one burst filling a ring that drains in 10ms) don't flap the
	// controller.
	const alpha = 0.3
	a.ewma = alpha*util + (1-alpha)*a.ewma
	a.hotStage = hot
	a.samples = samples
	a.utilMilli.Store(uint64(a.ewma * 1000))

	engaged := a.severity.Load() > 0
	switch {
	case !engaged && a.ewma >= a.cfg.HighWater:
		a.engages.Inc()
		a.severity.Store(a.severityFor(a.ewma))
	case engaged && a.ewma <= a.cfg.LowWater:
		a.severity.Store(0)
	case engaged:
		a.severity.Store(a.severityFor(a.ewma))
	}
}

// severityFor maps smoothed utilization onto 1..1000: LowWater → 1,
// full queues → 1000. Severity drives the Normal-class shed
// probability and the advertised Retry-After.
func (a *Admission) severityFor(util float64) uint64 {
	s := (util - a.cfg.LowWater) / (1 - a.cfg.LowWater)
	if s < 0.001 {
		s = 0.001
	}
	if s > 1 {
		s = 1
	}
	return uint64(s * 1000)
}

// Admit decides one request. Unsaturated fast path: one atomic load
// plus the admitted counter. When engaged: Low sheds outright, Normal
// sheds with probability equal to severity, Critical always passes.
func (a *Admission) Admit(p Priority) Decision {
	if a == nil {
		return Decision{OK: true}
	}
	sev := a.severity.Load()
	if sev == 0 || p == PriorityCritical {
		a.admitted[p].Inc()
		return Decision{OK: true}
	}
	if p == PriorityNormal && rand.Uint64()%1000 >= sev {
		a.admitted[p].Inc()
		return Decision{OK: true}
	}
	a.shed[p].Inc()
	// Back clients off harder the deeper the saturation: base at the
	// low end, 4x base when queues are pinned full.
	ra := a.cfg.RetryAfter + 3*time.Duration(sev)*a.cfg.RetryAfter/1000
	return Decision{OK: false, RetryAfter: ra}
}

// Repeat reports whether (user, venue) was seen within RepeatWindow —
// the dedupe-cheap classifier. It also records the sighting, so the
// first claim of a pair answers false and primes the slot.
func (a *Admission) Repeat(user, venue uint64) bool {
	if a == nil {
		return false
	}
	// FNV-style mix of the pair; low bits pick the slot, high 32 tag it.
	h := (user*0x9E3779B97F4A7C15 ^ venue) * 0x2545F4914F6CDD1D
	slot := &a.repeat[h&(repeatSlots-1)]
	tag := h >> 32 << 32
	now := uint64(a.cfg.Clock.Now().Unix()) & 0xFFFFFFFF
	prev := slot.Load()
	slot.Store(tag | now)
	if prev>>32<<32 != tag {
		return false
	}
	elapsed := int64(now) - int64(prev&0xFFFFFFFF)
	return elapsed >= 0 && elapsed <= int64(a.cfg.RepeatWindow/time.Second)
}

// Classify assigns a check-in's priority at the API edge: quarantined
// users ride the denied-claim evidence path (Critical — the paper's
// detectors feed on exactly these), repeat claims within the window
// are dedupe-cheap (Low), everything else is a fresh claim (Normal).
func (a *Admission) Classify(user, venue uint64, quarantined bool) Priority {
	if quarantined {
		return PriorityCritical
	}
	if a.Repeat(user, venue) {
		return PriorityLow
	}
	return PriorityNormal
}

// Saturated reports whether shedding is currently engaged — /readyz
// turns this into a 503 so load balancers steer new traffic away while
// the node drains.
func (a *Admission) Saturated() bool {
	return a != nil && a.severity.Load() > 0
}

// AdmissionStatus is the /alerts/stats view of the controller.
type AdmissionStatus struct {
	Engaged     bool              `json:"engaged"`
	Severity    float64           `json:"severity"`
	Utilization float64           `json:"utilization"`
	HotStage    string            `json:"hotStage,omitempty"`
	Stages      []StageSample     `json:"stages,omitempty"`
	Admitted    map[string]uint64 `json:"admitted"`
	Shed        map[string]uint64 `json:"shed"`
	Engagements uint64            `json:"engagements"`
}

// Status snapshots the controller.
func (a *Admission) Status() AdmissionStatus {
	if a == nil {
		return AdmissionStatus{}
	}
	a.mu.Lock()
	st := AdmissionStatus{
		Engaged:     a.severity.Load() > 0,
		Severity:    float64(a.severity.Load()) / 1000,
		Utilization: a.ewma,
		HotStage:    a.hotStage,
		Stages:      append([]StageSample(nil), a.samples...),
		Admitted:    make(map[string]uint64, numPriorities),
		Shed:        make(map[string]uint64, numPriorities),
		Engagements: a.engages.Value(),
	}
	a.mu.Unlock()
	for p := PriorityLow; p <= PriorityCritical; p++ {
		st.Admitted[p.String()] = a.admitted[p].Value()
		st.Shed[p.String()] = a.shed[p].Value()
	}
	return st
}
