package backpressure

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"locheat/internal/simclock"
)

// fakeStage is a settable queue for driving the controller: depth and
// capacity are atomics so the -race overload test can mutate them while
// Tick samples.
type fakeStage struct {
	depth atomic.Int64
	cap   atomic.Int64
}

func (f *fakeStage) sample() (int, int) { return int(f.depth.Load()), int(f.cap.Load()) }

// newManual builds a controller with no background goroutine (tests
// drive Tick) over one fake stage.
func newManual(t *testing.T, cfg AdmissionConfig) (*Admission, *fakeStage) {
	t.Helper()
	st := &fakeStage{}
	st.cap.Store(100)
	cfg.Monitor = NewMonitor(Stage{Name: "stream", Sample: st.sample})
	cfg.Interval = -1
	a := NewAdmission(cfg)
	t.Cleanup(a.Close)
	return a, st
}

// tickUntil drives Tick until cond holds, failing after max ticks.
func tickUntil(t *testing.T, a *Admission, max int, cond func() bool, what string) int {
	t.Helper()
	for i := 0; i < max; i++ {
		if cond() {
			return i
		}
		a.Tick()
	}
	if !cond() {
		t.Fatalf("%s: not reached after %d ticks (status %+v)", what, max, a.Status())
	}
	return max
}

func TestAdmissionEngageReleaseHysteresis(t *testing.T) {
	a, st := newManual(t, AdmissionConfig{HighWater: 0.85, LowWater: 0.4})

	// A single-sample spike must not engage: the EWMA (alpha 0.3) only
	// reaches 0.3 before the queue drains again.
	st.depth.Store(100)
	a.Tick()
	st.depth.Store(0)
	if a.Saturated() {
		t.Fatal("one full sample must not engage the controller")
	}
	tickUntil(t, a, 50, func() bool { return a.Status().Utilization < 0.01 }, "spike decay")
	if got := a.Status().Engagements; got != 0 {
		t.Fatalf("engagements after spike = %d, want 0", got)
	}

	// Sustained pressure engages. depth 2x capacity → util 2.0, so the
	// EWMA crosses 0.85 on the second tick and severity clamps to 1000.
	st.depth.Store(200)
	n := tickUntil(t, a, 20, a.Saturated, "engage")
	if n < 2 {
		t.Fatalf("engaged after %d ticks, want >= 2 (EWMA must smooth)", n)
	}
	stStatus := a.Status()
	if stStatus.Engagements != 1 {
		t.Fatalf("engagements = %d, want 1", stStatus.Engagements)
	}
	if stStatus.HotStage != "stream" {
		t.Fatalf("hot stage = %q, want stream", stStatus.HotStage)
	}

	// Hysteresis: draining to just above LowWater keeps shedding on.
	tickUntil(t, a, 50, func() bool { return a.Status().Severity >= 0.999 }, "severity pin")
	st.depth.Store(50) // util 0.5 > LowWater 0.4
	for i := 0; i < 100; i++ {
		a.Tick()
	}
	if !a.Saturated() {
		t.Fatal("utilization above LowWater must keep the controller engaged")
	}

	// Full drain releases, and a fresh overload re-engages (counting a
	// second engagement, not resuming the first).
	st.depth.Store(0)
	tickUntil(t, a, 50, func() bool { return !a.Saturated() }, "release")
	st.depth.Store(200)
	tickUntil(t, a, 20, a.Saturated, "re-engage")
	if got := a.Status().Engagements; got != 2 {
		t.Fatalf("engagements after re-engage = %d, want 2", got)
	}
}

func TestAdmissionPriorityOrderAtFullSaturation(t *testing.T) {
	a, st := newManual(t, AdmissionConfig{RetryAfter: time.Second})
	st.depth.Store(200)
	tickUntil(t, a, 50, func() bool { return a.Status().Severity >= 0.999 }, "pin severity at 1000")

	// At severity 1000 the order is absolute, not probabilistic: Low and
	// Normal always shed (rand%1000 >= 1000 is impossible), Critical
	// always passes.
	for i := 0; i < 500; i++ {
		if d := a.Admit(PriorityLow); d.OK {
			t.Fatal("Low admitted at full saturation")
		}
		if d := a.Admit(PriorityNormal); d.OK {
			t.Fatal("Normal admitted at full saturation")
		}
		d := a.Admit(PriorityCritical)
		if !d.OK {
			t.Fatal("Critical shed — the alert/denied-claim path must never shed")
		}
		if d.RetryAfter != 0 {
			t.Fatalf("admitted decision advertises RetryAfter %v", d.RetryAfter)
		}
	}
	status := a.Status()
	if status.Shed["low"] != 500 || status.Shed["normal"] != 500 || status.Shed["critical"] != 0 {
		t.Fatalf("shed = %v, want low/normal 500 each, critical 0", status.Shed)
	}
	if status.Admitted["critical"] != 500 {
		t.Fatalf("admitted critical = %d, want 500", status.Admitted["critical"])
	}

	// Retry-After at severity 1000 is the 4x-base ceiling.
	if d := a.Admit(PriorityLow); d.RetryAfter != 4*time.Second {
		t.Fatalf("RetryAfter at severity 1000 = %v, want 4s", d.RetryAfter)
	}
}

func TestAdmissionRetryAfterScalesWithSeverity(t *testing.T) {
	a, st := newManual(t, AdmissionConfig{HighWater: 0.85, LowWater: 0.4, RetryAfter: time.Second})
	// Pin utilization at 0.9: severity settles near (0.9-0.4)/0.6 ≈ 833,
	// so the advertised backoff sits strictly between base and 4x base.
	st.depth.Store(90)
	for i := 0; i < 200; i++ {
		a.Tick()
	}
	if !a.Saturated() {
		t.Fatalf("not engaged at util 0.9 (status %+v)", a.Status())
	}
	d := a.Admit(PriorityLow)
	if d.OK {
		t.Fatal("Low must shed while engaged")
	}
	if d.RetryAfter <= time.Second || d.RetryAfter >= 4*time.Second {
		t.Fatalf("RetryAfter at mid severity = %v, want strictly between 1s and 4s", d.RetryAfter)
	}
}

func TestAdmissionUnsaturatedFastPath(t *testing.T) {
	a, _ := newManual(t, AdmissionConfig{})
	for _, p := range []Priority{PriorityLow, PriorityNormal, PriorityCritical} {
		if d := a.Admit(p); !d.OK {
			t.Fatalf("priority %v shed while unsaturated", p)
		}
	}
	st := a.Status()
	if st.Engaged || st.Severity != 0 {
		t.Fatalf("status = %+v, want disengaged", st)
	}
	if st.Admitted["low"] != 1 || st.Admitted["normal"] != 1 || st.Admitted["critical"] != 1 {
		t.Fatalf("admitted = %v, want 1 each", st.Admitted)
	}
}

func TestRepeatWindowAndClassify(t *testing.T) {
	sim := simclock.NewSimulated(simclock.Epoch())
	a, _ := newManual(t, AdmissionConfig{RepeatWindow: 60 * time.Second, Clock: sim})

	if a.Repeat(7, 9) {
		t.Fatal("first sighting of a pair must not be a repeat")
	}
	if !a.Repeat(7, 9) {
		t.Fatal("second sighting inside the window must be a repeat")
	}
	sim.Advance(61 * time.Second)
	if a.Repeat(7, 9) {
		t.Fatal("sighting after the window elapsed must not be a repeat")
	}

	if got := a.Classify(1, 2, true); got != PriorityCritical {
		t.Fatalf("quarantined user classified %v, want critical", got)
	}
	if got := a.Classify(3, 4, false); got != PriorityNormal {
		t.Fatalf("fresh claim classified %v, want normal", got)
	}
	if got := a.Classify(3, 4, false); got != PriorityLow {
		t.Fatalf("repeat claim classified %v, want low (dedupe-cheap)", got)
	}
}

func TestAdmissionNilSafe(t *testing.T) {
	var a *Admission
	if d := a.Admit(PriorityLow); !d.OK {
		t.Fatal("nil admission must admit")
	}
	if a.Saturated() {
		t.Fatal("nil admission must not report saturated")
	}
	if got := a.Classify(1, 2, false); got != PriorityNormal {
		t.Fatalf("nil Classify = %v, want normal", got)
	}
	a.Tick()  // must not panic
	a.Close() // must not panic
}

func TestAdmissionBackgroundSamplerCloses(t *testing.T) {
	st := &fakeStage{}
	st.cap.Store(100)
	a := NewAdmission(AdmissionConfig{
		Monitor:  NewMonitor(Stage{Name: "stream", Sample: st.sample}),
		Interval: time.Millisecond,
	})
	time.Sleep(5 * time.Millisecond)
	a.Close()
	a.Close() // idempotent
}

// TestAdmissionOverloadNoDeadlock is the -race gate for satellite (c):
// with every queue pinned past capacity, concurrent admitters across
// all priorities plus a live sampler must make progress (the test
// finishing is the no-deadlock proof) and shed strictly by priority —
// every Low and Normal request refused, every Critical request through.
func TestAdmissionOverloadNoDeadlock(t *testing.T) {
	a, st := newManual(t, AdmissionConfig{})
	st.depth.Store(300)
	tickUntil(t, a, 50, func() bool { return a.Status().Severity >= 0.999 }, "saturate")

	const (
		goroutines = 8
		perG       = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	// Sampler keeps recomputing severity while admitters hammer; the
	// stage stays pinned so severity never leaves 1000.
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-stop:
				return
			default:
				a.Tick()
				a.Status()
			}
		}
	}()
	var lowOK, normalOK, criticalShed atomic.Uint64
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				user, venue := uint64(g*perG+i), uint64(i%97)
				switch a.Classify(user, venue, i%11 == 0) {
				case PriorityCritical:
					if !a.Admit(PriorityCritical).OK {
						criticalShed.Add(1)
					}
				case PriorityLow:
					if a.Admit(PriorityLow).OK {
						lowOK.Add(1)
					}
				default:
					if a.Admit(PriorityNormal).OK {
						normalOK.Add(1)
					}
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// wg.Wait alone would hang forever on a deadlock; bound it so the
	// failure is a message, not a test-binary timeout.
	timer := time.NewTimer(30 * time.Second)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		t.Fatal("admitters did not finish under overload: deadlock")
	}
	close(stop)
	<-samplerDone

	if n := criticalShed.Load(); n != 0 {
		t.Fatalf("%d critical requests shed under overload, want 0", n)
	}
	if n := lowOK.Load(); n != 0 {
		t.Fatalf("%d low-priority requests admitted at severity 1000, want 0", n)
	}
	if n := normalOK.Load(); n != 0 {
		t.Fatalf("%d normal-priority requests admitted at severity 1000, want 0", n)
	}
	status := a.Status()
	total := status.Admitted["low"] + status.Admitted["normal"] + status.Admitted["critical"] +
		status.Shed["low"] + status.Shed["normal"] + status.Shed["critical"]
	if total != goroutines*perG {
		t.Fatalf("accounted decisions = %d, want %d (every request must be counted)", total, goroutines*perG)
	}
}
