package backpressure

import "sync"

// SampleFunc reports a stage's instantaneous queue occupancy: current
// depth and total capacity. Implementations must be safe to call from
// the admission sampler goroutine while the stage runs (the stages all
// expose lock-free depth reads).
type SampleFunc func() (depth, capacity int)

// Stage is one monitored queue: a bounded buffer somewhere in the
// pipeline whose fill level signals pressure.
type Stage struct {
	Name   string
	Sample SampleFunc
}

// StageSample is one stage's reading at a sampling tick.
type StageSample struct {
	Name     string  `json:"name"`
	Depth    int     `json:"depth"`
	Capacity int     `json:"capacity"`
	Util     float64 `json:"util"`
}

// Monitor aggregates per-stage depth samplers into the single
// utilization figure the admission controller keys off: the maximum
// fill fraction across stages, because the pipeline is a chain — its
// headroom is its fullest queue's headroom, and averaging would let
// one saturated stage hide behind nine idle ones.
type Monitor struct {
	mu     sync.RWMutex
	stages []Stage
}

// NewMonitor builds a monitor over the given stages; more can be added
// later with Add (the forwarder's peer queues appear after cluster
// wiring).
func NewMonitor(stages ...Stage) *Monitor {
	return &Monitor{stages: stages}
}

// Add registers another stage.
func (m *Monitor) Add(s Stage) {
	if m == nil || s.Sample == nil {
		return
	}
	m.mu.Lock()
	m.stages = append(m.stages, s)
	m.mu.Unlock()
}

// Sample reads every stage and returns the readings plus the hottest
// stage's utilization and name. Stages reporting no capacity are
// skipped (an unbounded or unbuilt queue cannot saturate).
func (m *Monitor) Sample() (samples []StageSample, maxUtil float64, hot string) {
	if m == nil {
		return nil, 0, ""
	}
	m.mu.RLock()
	stages := m.stages
	m.mu.RUnlock()
	samples = make([]StageSample, 0, len(stages))
	for _, st := range stages {
		depth, cap := st.Sample()
		if cap <= 0 {
			continue
		}
		u := float64(depth) / float64(cap)
		samples = append(samples, StageSample{Name: st.Name, Depth: depth, Capacity: cap, Util: u})
		if u > maxUtil {
			maxUtil, hot = u, st.Name
		}
	}
	return samples, maxUtil, hot
}
