// Binary layouts for the replication tier's wire types, built on
// internal/wirecodec. ShipBatch is a versioned top-level message (it
// travels as a whole HTTP body); QuarEntry lists are unversioned
// elements — the containers that carry them (cluster's QuarBroadcast
// message, the ping piggyback) hold the version byte.
package replica

import (
	"locheat/internal/store"
	"locheat/internal/wirecodec"
)

// AppendShipBatch appends b's v1 binary encoding (version byte
// included) to dst, dropping alert trace links — the layout for
// followers that did not advertise the trace-aware codec.
func AppendShipBatch(dst []byte, b ShipBatch) []byte {
	dst = append(dst, wirecodec.Version)
	dst = wirecodec.AppendString(dst, b.From)
	dst = wirecodec.AppendVarint(dst, b.Epoch)
	dst = wirecodec.AppendUvarint(dst, b.Start)
	dst = wirecodec.AppendUvarint(dst, uint64(len(b.Alerts)))
	for _, a := range b.Alerts {
		dst = store.AppendAlert(dst, a)
	}
	return dst
}

// AppendShipBatchTraced is AppendShipBatch in the v2 layout: the same
// container with store.AppendAlertTraced elements, so a promoted
// replica keeps the alert→trace links the primary recorded.
func AppendShipBatchTraced(dst []byte, b ShipBatch) []byte {
	dst = append(dst, wirecodec.VersionTraced)
	dst = wirecodec.AppendString(dst, b.From)
	dst = wirecodec.AppendVarint(dst, b.Epoch)
	dst = wirecodec.AppendUvarint(dst, b.Start)
	dst = wirecodec.AppendUvarint(dst, uint64(len(b.Alerts)))
	for _, a := range b.Alerts {
		dst = store.AppendAlertTraced(dst, a)
	}
	return dst
}

// DecodeShipBatch decodes one whole ship batch body. Malformed or
// truncated input errors, never panics.
func DecodeShipBatch(buf []byte) (ShipBatch, error) {
	return DecodeShipBatchInto(buf, nil)
}

// DecodeShipBatchInto is DecodeShipBatch appending the alerts into the
// caller's scratch slice (reset first), so the receiving handler can
// reuse one slice across POSTs. Decoded strings are copies; the result
// never aliases buf.
func DecodeShipBatchInto(buf []byte, scratch []store.Alert) (ShipBatch, error) {
	d := wirecodec.NewDecoder(buf)
	v := d.VersionUpTo(wirecodec.VersionTraced)
	b := ShipBatch{
		From:  d.String(),
		Epoch: d.Varint(),
		Start: d.Uvarint(),
	}
	n := d.Count(8)
	b.Alerts = scratch[:0]
	for i := 0; i < n; i++ {
		if v == wirecodec.VersionTraced {
			b.Alerts = append(b.Alerts, store.ReadAlertTraced(d))
		} else {
			b.Alerts = append(b.Alerts, store.ReadAlert(d))
		}
	}
	if err := d.Finish(); err != nil {
		return ShipBatch{}, err
	}
	return b, nil
}

// AppendQuarEntries appends a counted QuarEntry list to dst.
func AppendQuarEntries(dst []byte, entries []QuarEntry) []byte {
	dst = wirecodec.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = wirecodec.AppendUvarint(dst, e.User)
		dst = wirecodec.AppendVarint(dst, e.Stamp)
		dst = wirecodec.AppendString(dst, e.Origin)
		dst = wirecodec.AppendBool(dst, e.Active)
		dst = store.AppendQuarantineRecord(dst, e.Record)
	}
	return dst
}

// AppendQuarEntriesTraced is AppendQuarEntries plus each entry's
// trailing trace link, for trace-aware (v2) containers.
func AppendQuarEntriesTraced(dst []byte, entries []QuarEntry) []byte {
	dst = wirecodec.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = wirecodec.AppendUvarint(dst, e.User)
		dst = wirecodec.AppendVarint(dst, e.Stamp)
		dst = wirecodec.AppendString(dst, e.Origin)
		dst = wirecodec.AppendBool(dst, e.Active)
		dst = store.AppendQuarantineRecord(dst, e.Record)
		dst = wirecodec.AppendString(dst, e.Trace)
	}
	return dst
}

// ReadQuarEntries decodes a counted QuarEntry list; failures stick to
// d (check d.Err or d.Finish).
func ReadQuarEntries(d *wirecodec.Decoder) []QuarEntry {
	n := d.Count(9)
	if n == 0 {
		return nil
	}
	out := make([]QuarEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, QuarEntry{
			User:   d.Uvarint(),
			Stamp:  d.Varint(),
			Origin: d.String(),
			Active: d.Bool(),
			Record: store.ReadQuarantineRecord(d),
		})
	}
	return out
}

// ReadQuarEntriesTraced decodes an AppendQuarEntriesTraced list.
func ReadQuarEntriesTraced(d *wirecodec.Decoder) []QuarEntry {
	n := d.Count(10)
	if n == 0 {
		return nil
	}
	out := make([]QuarEntry, 0, n)
	for i := 0; i < n; i++ {
		e := QuarEntry{
			User:   d.Uvarint(),
			Stamp:  d.Varint(),
			Origin: d.String(),
			Active: d.Bool(),
			Record: store.ReadQuarantineRecord(d),
		}
		e.Trace = d.String()
		out = append(out, e)
	}
	return out
}
