// Package replica is the cluster's durability and dissemination tier.
// The partitioned ingest tier (internal/cluster) made detection scale
// across nodes but left three loss windows open: a killed node took
// its alert journal — the evidence trail — with it, quarantine was
// only reliably enforced on a user's owner node, and cross-node
// forwarding was at-most-once. This package closes all three with one
// coherent mechanism family — append logs plus versioned state
// exchange — kept transport-agnostic (everything speaks through
// injected send functions) so internal/cluster can wire it over its
// /cluster/v1 HTTP surface and tests can wire it over direct calls:
//
//   - Shipper (ship.go) streams a store.AlertJournal's appends to the
//     node's followers on the ring: async, batched, ack-based cursor
//     per follower, with anti-entropy catch-up (a new or lagging
//     follower is brought current by re-reading closed segments off
//     disk from its acknowledged cursor).
//   - Set (set.go) is the receiving half: one on-disk replica log per
//     primary, with a durable cursor, epoch-based reset on primary
//     restart, and queries so a promoted replica can serve the dead
//     primary's alert history in merged views.
//   - Broadcaster (broadcast.go) disseminates quarantine transitions
//     cluster-wide: per-user last-writer-wins entries (monotonic stamp,
//     origin tie-break), immediate best-effort fan-out, and periodic
//     digest exchange as the anti-entropy backstop, with tombstones so
//     releases do not resurrect.
//   - Outbox (outbox.go) is the forwarder's bounded on-disk spill:
//     events a peer queue dropped or a POST lost are journaled and
//     replayed on peer recovery, upgrading migration from at-most-once
//     to effectively-once (the receiver dedupes replays by forwarding
//     sequence).
package replica

import "locheat/internal/store"

// Target is one replication destination: a member ID plus whatever
// address the transport needs.
type Target struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// ShipBatch is one journal replication batch: Alerts are the primary's
// records with global indexes [Start, Start+len). Epoch identifies the
// primary journal's current open; indexes from different epochs are
// not comparable, and a follower seeing a new epoch resets its replica
// before applying.
type ShipBatch struct {
	From   string        `json:"from"`
	Epoch  int64         `json:"epoch"`
	Start  uint64        `json:"start"`
	Alerts []store.Alert `json:"alerts"`
}

// ShipAck is the follower's reply: the cursor it will accept next.
// The shipper adopts it wholesale, which self-heals both directions
// of disagreement (a follower ahead after a shipper restart, or
// behind after losing its replica).
type ShipAck struct {
	Cursor uint64 `json:"cursor"`
}

// CursorState is a follower's durable position for one primary.
type CursorState struct {
	Epoch  int64  `json:"epoch"`
	Cursor uint64 `json:"cursor"`
}

// QuarEntry is one user's versioned quarantine state on the broadcast
// wire. Stamp is a monotonic origin-local timestamp (nanos) and Origin
// breaks stamp ties; together they give a total LWW order every node
// agrees on. Active false is a tombstone: the user was released, and
// the entry exists so anti-entropy cannot resurrect the quarantine.
type QuarEntry struct {
	User   uint64                 `json:"user"`
	Stamp  int64                  `json:"stamp"`
	Origin string                 `json:"origin"`
	Active bool                   `json:"active"`
	Record store.QuarantineRecord `json:"record,omitempty"`
	// Trace links the quarantine transition to the flight-recorder
	// trace of the alert that caused it, when that check-in was
	// head-sampled (internal/trace). Best-effort observability
	// freight: it never participates in the LWW order, and on the
	// binary wire it rides only trace-aware (v2) containers.
	Trace string `json:"trace,omitempty"`
}

// newer reports whether e should overwrite cur under LWW order.
func (e QuarEntry) newer(cur QuarEntry) bool {
	if e.Stamp != cur.Stamp {
		return e.Stamp > cur.Stamp
	}
	return e.Origin > cur.Origin
}
