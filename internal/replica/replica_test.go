package replica

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"locheat/internal/simclock"
	"locheat/internal/store"
)

func shipTestAlert(i int) store.Alert {
	return store.Alert{
		Seq:      uint64(i + 1),
		Detector: "speed",
		UserID:   uint64(i%9 + 1),
		VenueID:  uint64(i + 500),
		At:       simclock.Epoch().Add(time.Duration(i) * time.Minute),
		Detail:   "ship",
	}
}

func openTestJournal(t testing.TB, dir string) *store.AlertJournal {
	t.Helper()
	j, err := store.OpenAlertJournal(store.JournalConfig{
		Dir:          dir,
		SegmentBytes: 4 << 10,
		MaxSegments:  64,
		FsyncEvery:   1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// directSendPair wires a Shipper straight into a Set, no HTTP — the
// transport seam the cluster layer fills with real requests.
func directSendPair(t testing.TB, j *store.AlertJournal, set *Set) *Shipper {
	t.Helper()
	return NewShipper(ShipperConfig{
		Self:    "primary",
		Journal: j,
		Send: func(_ Target, b ShipBatch) (ShipAck, error) {
			cursor, err := set.Apply(b.From, b.Epoch, b.Start, b.Alerts)
			return ShipAck{Cursor: cursor}, err
		},
		FetchCursor: func(_ Target) (CursorState, error) {
			return set.Cursor("primary"), nil
		},
		BatchSize: 16,
		Interval:  5 * time.Millisecond,
		Logf:      t.Logf,
	})
}

func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestShipperReplicatesAppends: live appends stream to the follower and
// the replica answers the same queries as the primary.
func TestShipperReplicatesAppends(t *testing.T) {
	j := openTestJournal(t, t.TempDir())
	defer j.Close()
	set, err := OpenSet(SetConfig{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	sh := directSendPair(t, j, set)
	defer sh.Close()
	sh.SetTargets([]Target{{ID: "follower", Addr: "direct"}})
	j.SetAppendNotify(sh.Notify)

	const n = 100
	for i := 0; i < n; i++ {
		if err := j.Append(shipTestAlert(i)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "replica caught up", func() bool {
		if set.Cursor("primary").Cursor != uint64(n) {
			return false
		}
		// The shipper records the ack after Apply returns; wait for its
		// own view too so the stats assertion below cannot race it.
		st := sh.Stats()
		return len(st.Followers) == 1 && st.Followers[0].Lag == 0
	})

	page, total := set.Query("primary", store.AlertQuery{Limit: n})
	if total != n || len(page) != n {
		t.Fatalf("replica query total=%d page=%d, want %d", total, len(page), n)
	}
	if page[0].Seq != n || page[n-1].Seq != 1 {
		t.Fatalf("replica order wrong: %d..%d", page[0].Seq, page[n-1].Seq)
	}
	st := sh.Stats()
	if len(st.Followers) != 1 || st.Followers[0].Lag != 0 {
		t.Fatalf("shipper stats = %+v, want one follower at lag 0", st)
	}
}

// TestShipperCatchUpNewFollower: a follower adopted after the fact is
// brought current from closed segments (anti-entropy), and a flaky
// transport only delays convergence.
func TestShipperCatchUpNewFollower(t *testing.T) {
	j := openTestJournal(t, t.TempDir())
	defer j.Close()
	const n = 150
	for i := 0; i < n; i++ {
		if err := j.Append(shipTestAlert(i)); err != nil {
			t.Fatal(err)
		}
	}
	set, err := OpenSet(SetConfig{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	var mu sync.Mutex
	fails := 3 // first sends fail: the shipper must refetch and retry
	sh := NewShipper(ShipperConfig{
		Self:    "primary",
		Journal: j,
		Send: func(_ Target, b ShipBatch) (ShipAck, error) {
			mu.Lock()
			if fails > 0 {
				fails--
				mu.Unlock()
				return ShipAck{}, errors.New("transient")
			}
			mu.Unlock()
			cursor, err := set.Apply(b.From, b.Epoch, b.Start, b.Alerts)
			return ShipAck{Cursor: cursor}, err
		},
		FetchCursor: func(_ Target) (CursorState, error) { return set.Cursor("primary"), nil },
		BatchSize:   32,
		Interval:    2 * time.Millisecond,
		Logf:        t.Logf,
	})
	defer sh.Close()
	sh.SetTargets([]Target{{ID: "late", Addr: "direct"}})

	waitFor(t, "late follower caught up", func() bool {
		return set.Cursor("primary").Cursor == uint64(n)
	})
	if _, total := set.Query("primary", store.AlertQuery{}); total != n {
		t.Fatalf("late follower holds %d alerts, want %d", total, n)
	}
}

// TestSetEpochReset: a batch from a new epoch (primary restart) resets
// the replica rather than interleaving incomparable index spaces, and
// overlapping resends within an epoch are skipped, not duplicated.
func TestSetEpochReset(t *testing.T) {
	set, err := OpenSet(SetConfig{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()

	a := []store.Alert{shipTestAlert(0), shipTestAlert(1), shipTestAlert(2)}
	if _, err := set.Apply("p", 100, 0, a); err != nil {
		t.Fatal(err)
	}
	// Overlapping resend: records 1..2 again plus a new record 3.
	cursor, err := set.Apply("p", 100, 1, []store.Alert{shipTestAlert(1), shipTestAlert(2), shipTestAlert(3)})
	if err != nil {
		t.Fatal(err)
	}
	if cursor != 4 {
		t.Fatalf("cursor after overlap = %d, want 4", cursor)
	}
	if _, total := set.Query("p", store.AlertQuery{}); total != 4 {
		t.Fatalf("replica holds %d after overlap, want 4 (dupes appended)", total)
	}

	// New epoch: replica resets and follows the fresh index space.
	if _, err := set.Apply("p", 200, 0, []store.Alert{shipTestAlert(10), shipTestAlert(11)}); err != nil {
		t.Fatal(err)
	}
	if st := set.Cursor("p"); st.Epoch != 200 || st.Cursor != 2 {
		t.Fatalf("post-reset cursor = %+v, want epoch 200 cursor 2", st)
	}
	if _, total := set.Query("p", store.AlertQuery{}); total != 2 {
		t.Fatalf("replica holds %d after reset, want 2", total)
	}
	st := set.Stats()
	if len(st.Replicas) != 1 || st.Replicas[0].Resets != 1 {
		t.Fatalf("stats = %+v, want one replica with one reset", st)
	}
}

// TestSetSurvivesReopen: the replica log and cursor persist across a
// follower restart.
func TestSetSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	set, err := OpenSet(SetConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Apply("node-2", 7, 0, []store.Alert{shipTestAlert(0), shipTestAlert(1)}); err != nil {
		t.Fatal(err)
	}
	set.Close()

	set2, err := OpenSet(SetConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer set2.Close()
	if st := set2.Cursor("node-2"); st.Epoch != 7 || st.Cursor != 2 {
		t.Fatalf("reopened cursor = %+v, want epoch 7 cursor 2", st)
	}
	if _, total := set2.Query("node-2", store.AlertQuery{}); total != 2 {
		t.Fatalf("reopened replica holds %d, want 2", total)
	}
	if ps := set2.Primaries(); len(ps) != 1 || ps[0] != "node-2" {
		t.Fatalf("primaries = %v", ps)
	}
}

// TestBroadcasterLWWAndTombstones covers origination, remote apply,
// echo suppression, release tombstones and digest repair.
func TestBroadcasterLWWAndTombstones(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	type applied struct {
		user   uint64
		active bool
	}
	var mu sync.Mutex
	var applies []applied

	var b *Broadcaster
	var sentBatches [][]QuarEntry
	b = NewBroadcaster(BroadcastConfig{
		Self:  "n1",
		Clock: clock,
		Apply: func(e QuarEntry) {
			mu.Lock()
			applies = append(applies, applied{user: e.User, active: e.Active})
			mu.Unlock()
			// The service listener echo: must be suppressed.
			b.LocalChange(e.User, e.Active, e.Record)
		},
		Send: func(entries []QuarEntry) {
			mu.Lock()
			sentBatches = append(sentBatches, entries)
			mu.Unlock()
		},
		Logf: t.Logf,
	})
	defer b.Close()

	rec := store.QuarantineRecord{UserID: 7, Since: clock.Now(), Until: clock.Now().Add(time.Hour), Reason: "test", Source: "policy"}
	b.LocalChange(7, true, rec)
	b.Flush()
	mu.Lock()
	if len(sentBatches) != 1 || len(sentBatches[0]) != 1 || !sentBatches[0][0].Active {
		t.Fatalf("sent = %+v, want one active entry", sentBatches)
	}
	origin := sentBatches[0][0]
	mu.Unlock()

	// A remote release newer than our entry wins; the echo from the
	// apply callback must not re-originate.
	release := QuarEntry{User: 7, Stamp: origin.Stamp + 10, Origin: "n2", Active: false}
	if n := b.ApplyRemote([]QuarEntry{release}); n != 1 {
		t.Fatalf("applied %d, want 1", n)
	}
	mu.Lock()
	if len(applies) != 1 || applies[0].active {
		t.Fatalf("applies = %+v, want one release", applies)
	}
	mu.Unlock()
	if st := b.Stats(); st.Echoes != 1 {
		t.Fatalf("stats = %+v, want one suppressed echo", st)
	}

	// An OLDER remote quarantine must lose to the release tombstone.
	stale := QuarEntry{User: 7, Stamp: origin.Stamp + 5, Origin: "n3", Active: true, Record: rec}
	if n := b.ApplyRemote([]QuarEntry{stale}); n != 0 {
		t.Fatal("stale entry resurrected a released quarantine")
	}

	// Digest carries the tombstone; MergeDigest repairs a peer that
	// still thinks the user is quarantined.
	d := b.Digest()
	if len(d) != 1 || d[0].Active {
		t.Fatalf("digest = %+v, want the release tombstone", d)
	}
	reply, applied2 := b.MergeDigest([]QuarEntry{stale})
	if applied2 != 0 || len(reply) != 1 || reply[0].Active {
		t.Fatalf("merge reply = %+v applied=%d, want tombstone repair", reply, applied2)
	}

	// Tombstones expire after the TTL.
	clock.Advance(25 * time.Hour)
	if d := b.Digest(); len(d) != 0 {
		t.Fatalf("digest after TTL = %+v, want empty", d)
	}
}

// TestBroadcasterStampsMonotonic: stamps strictly increase even when
// the clock stands still (simclock), so same-instant transitions still
// have a total order.
func TestBroadcasterStampsMonotonic(t *testing.T) {
	clock := simclock.NewSimulated(simclock.Epoch())
	var mu sync.Mutex
	var stamps []int64
	b := NewBroadcaster(BroadcastConfig{
		Self:  "n1",
		Clock: clock,
		Send: func(entries []QuarEntry) {
			mu.Lock()
			for _, e := range entries {
				stamps = append(stamps, e.Stamp)
			}
			mu.Unlock()
		},
		Logf: t.Logf,
	})
	defer b.Close()
	for i := 0; i < 5; i++ {
		b.LocalChange(uint64(i+1), true, store.QuarantineRecord{UserID: uint64(i + 1), Until: clock.Now().Add(time.Hour)})
	}
	b.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(stamps) != 5 {
		t.Fatalf("sent %d entries, want 5", len(stamps))
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] <= stamps[i-1] {
			t.Fatalf("stamps not strictly increasing: %v", stamps)
		}
	}
}

// TestOutboxSpillDrain: spill, partial drain (some deliveries fail),
// compaction, restart survival, and the per-peer cap.
func TestOutboxSpillDrain(t *testing.T) {
	dir := t.TempDir()
	o, err := OpenOutbox(OutboxConfig{Dir: dir, MaxBytesPerPeer: 1 << 16, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !o.Append("peer-b", []byte(fmt.Sprintf("event-%d", i))) {
			t.Fatalf("append %d refused", i)
		}
	}
	if d := o.Depth("peer-b"); d != 10 {
		t.Fatalf("depth %d, want 10", d)
	}

	// Drain with every third delivery failing: failures compact back in
	// order.
	var got []string
	i := 0
	delivered, requeued := o.Drain("peer-b", func(p []byte) bool {
		i++
		if i%3 == 0 {
			return false
		}
		got = append(got, string(p))
		return true
	})
	if delivered != 7 || requeued != 3 {
		t.Fatalf("drain = %d/%d, want 7 delivered 3 requeued", delivered, requeued)
	}
	if o.Depth("peer-b") != 3 {
		t.Fatalf("depth after drain %d, want 3", o.Depth("peer-b"))
	}

	// Restart: the compacted remainder survives.
	o2, err := OpenOutbox(OutboxConfig{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if d := o2.Depth("peer-b"); d != 3 {
		t.Fatalf("depth after reopen %d, want 3", d)
	}
	var after []string
	o2.Drain("peer-b", func(p []byte) bool { after = append(after, string(p)); return true })
	want := []string{"event-2", "event-5", "event-8"}
	if len(after) != 3 || after[0] != want[0] || after[1] != want[1] || after[2] != want[2] {
		t.Fatalf("requeued order = %v, want %v", after, want)
	}
	if ps := o2.Peers(); len(ps) != 0 {
		t.Fatalf("peers after full drain = %v, want none", ps)
	}

	// The cap refuses, counts, and keeps the file bounded.
	tiny, err := OpenOutbox(OutboxConfig{Dir: t.TempDir(), MaxBytesPerPeer: 64, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i := 0; i < 100; i++ {
		if tiny.Append("x", []byte("0123456789")) {
			accepted++
		}
	}
	st := tiny.Stats()
	if accepted == 0 || accepted == 100 {
		t.Fatalf("cap accepted %d of 100", accepted)
	}
	if st.Dropped != uint64(100-accepted) {
		t.Fatalf("dropped %d, want %d", st.Dropped, 100-accepted)
	}
}

// TestOutboxDrainKeepsConcurrentSpills: payloads appended while a
// drain's deliveries are in flight survive the compaction.
func TestOutboxDrainKeepsConcurrentSpills(t *testing.T) {
	o, err := OpenOutbox(OutboxConfig{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	o.Append("p", []byte("first"))
	delivered, _ := o.Drain("p", func(p []byte) bool {
		// Mid-drain spill: arrives after the drain snapshot was read.
		o.Append("p", []byte("mid-drain"))
		return true
	})
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if d := o.Depth("p"); d != 1 {
		t.Fatalf("mid-drain spill lost: depth %d, want 1", d)
	}
	var rest []string
	o.Drain("p", func(p []byte) bool { rest = append(rest, string(p)); return true })
	if len(rest) != 1 || rest[0] != "mid-drain" {
		t.Fatalf("remainder = %v", rest)
	}
}
