// Shipper: the sending half of journal replication. One goroutine
// tails the local store.AlertJournal and streams batches to each
// follower target, tracking an acknowledged cursor per follower.
// Everything is pull-from-the-journal: a fresh append, a follower
// change and anti-entropy catch-up are all the same operation — "read
// from the follower's cursor and send" — so a new follower is brought
// current by the identical code path that ships the live tail, paging
// closed segments off disk through AlertJournal.ReadFrom. Shipping is
// asynchronous and never blocks the append path (the journal's notify
// hook is a non-blocking channel poke); a follower that cannot be
// reached accumulates lag and is retried on the next wake.
package replica

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"locheat/internal/obs"
	"locheat/internal/store"
	"locheat/internal/trace"
)

// ShipperConfig parameterizes NewShipper. Journal and Send are
// required; zero values elsewhere take defaults.
type ShipperConfig struct {
	// Self is the primary's member ID, stamped on every batch.
	Self string
	// Journal is the local journal being replicated.
	Journal *store.AlertJournal
	// Send delivers one batch to a follower and returns its ack.
	Send func(t Target, b ShipBatch) (ShipAck, error)
	// FetchCursor asks a follower where it stands for this primary
	// (used when a target is first adopted or after a send error, so
	// catch-up starts from truth rather than assumption). Nil starts
	// new targets from the oldest retained record.
	FetchCursor func(t Target) (CursorState, error)
	// BatchSize caps records per batch (default 256).
	BatchSize int
	// Interval paces the retry/anti-entropy wake-ups (default 100ms);
	// fresh appends wake the loop immediately regardless.
	Interval time.Duration
	// Logf receives shipping events. Nil discards.
	Logf func(format string, args ...any)
	// Obs registers shipping telemetry: batch send latency and size
	// histograms, the append-to-replicated ship-lag histogram, and
	// per-follower record-lag gauges. Nil ships unobserved.
	Obs *obs.Registry
	// Tracer appends the replication-hop span to retained traces of
	// shipped alerts (the owner fragment completed before shipping, so
	// the span lands post-hoc via SpanKept) and attaches the trace ID
	// as the ship-lag histogram's exemplar. Nil ships untraced.
	Tracer *trace.Tracer
}

func (c ShipperConfig) withDefaults() ShipperConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// shipScratch pools the per-pass read buffer: each shipTo loop reuses
// one []store.Alert across journal reads instead of allocating a batch
// per pass. Pooled (not a Shipper field) because pass() runs from both
// the loop goroutine and Sync callers. Safe because cfg.Send is
// synchronous: the batch is encoded on the wire before the next read
// overwrites the slice.
var shipScratch = sync.Pool{New: func() any { return new([]store.Alert) }}

// followerState is one target's shipping position.
type followerState struct {
	target Target
	cursor uint64
	synced bool // cursor confirmed by the follower (fetch or ack)
	sent   uint64
	errors uint64
}

// Shipper replicates one journal to a dynamic follower set. Safe for
// concurrent use.
type Shipper struct {
	cfg ShipperConfig

	mu        sync.Mutex
	followers map[string]*followerState
	closed    bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	// shipLat/batchSize/shipLag are nil without ShipperConfig.Obs.
	// pendingNano is the UnixNano stamp of the oldest append not yet
	// fully replicated (0 = everything shipped): Notify CASes it in,
	// and the ack that brings a follower to the journal tail swaps it
	// out and observes the delta as ship lag in wall time.
	shipLat     *obs.Histogram
	batchSize   *obs.Histogram
	shipLag     *obs.Histogram
	pendingNano atomic.Int64
}

// NewShipper builds and starts a shipper. Wire the journal's append
// hook to Notify and the follower set via SetTargets.
func NewShipper(cfg ShipperConfig) *Shipper {
	s := &Shipper{
		cfg:       cfg.withDefaults(),
		followers: make(map[string]*followerState),
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	s.registerObs(s.cfg.Obs)
	go s.loop()
	return s
}

// registerObs exposes the shipping tier on reg. Aggregate counters
// read through the same follower states Stats() reports; per-follower
// lag gauges are registered as targets are adopted (SetTargets).
func (s *Shipper) registerObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.shipLat = reg.Histogram("locheat_replica_ship_latency_seconds",
		"round trip of one ship batch: send to follower ack", obs.Seconds)
	s.batchSize = reg.Histogram("locheat_replica_ship_batch_records",
		"records per shipped batch", obs.Units)
	s.shipLag = reg.Histogram("locheat_replica_ship_lag_seconds",
		"wall time from a journal append to a follower holding the full tail", obs.Seconds)
	sum := func(read func(*followerState) uint64) func() uint64 {
		return func() uint64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			var total uint64
			for _, f := range s.followers {
				total += read(f)
			}
			return total
		}
	}
	reg.CounterFunc("locheat_replica_ship_sent_total",
		"records acked by followers (all followers summed)",
		sum(func(f *followerState) uint64 { return f.sent }))
	reg.CounterFunc("locheat_replica_ship_errors_total",
		"failed ship sends and cursor fetches (all followers summed)",
		sum(func(f *followerState) uint64 { return f.errors }))
}

// SetTargets replaces the follower set (called on every ring change).
// Departed followers are forgotten; new ones start unsynced, so the
// next pass fetches their cursor and catch-up begins from wherever
// they actually are.
func (s *Shipper) SetTargets(targets []Target) {
	s.mu.Lock()
	next := make(map[string]*followerState, len(targets))
	for _, t := range targets {
		if f, ok := s.followers[t.ID]; ok && f.target.Addr == t.Addr {
			next[t.ID] = f
			continue
		}
		next[t.ID] = &followerState{target: t}
	}
	s.followers = next
	s.mu.Unlock()
	// Per-follower lag gauges, labelled by follower ID (bounded by the
	// ring size). A departed follower's gauge reads zero rather than
	// unregistering — the series going flat is the signal.
	if reg := s.cfg.Obs; reg != nil {
		for _, t := range targets {
			id := t.ID
			reg.GaugeFunc("locheat_replica_ship_lag_records",
				"journal records the follower has not acked",
				func() float64 {
					for _, fs := range s.Stats().Followers {
						if fs.ID == id {
							return float64(fs.Lag)
						}
					}
					return 0
				}, "follower", id)
		}
	}
	s.Notify()
}

// Notify wakes the shipping loop (journal append hook). Never blocks.
func (s *Shipper) Notify() {
	// Stamp the start of a replication backlog: the first notify while
	// fully shipped opens the ship-lag window shipTo closes. A plain
	// load guards the CAS so the steady-backlog case costs one atomic
	// read; skipped entirely when obs is off.
	if s.shipLag != nil && s.pendingNano.Load() == 0 {
		s.pendingNano.CompareAndSwap(0, time.Now().UnixNano())
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// loop ships until Close: woken by appends, paced by Interval for
// retries and anti-entropy.
func (s *Shipper) loop() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
		case <-t.C:
		}
		s.pass()
	}
}

// pass pushes every follower as far toward the journal tail as one
// round allows.
func (s *Shipper) pass() {
	for _, f := range s.snapshot() {
		s.shipTo(f)
	}
}

// snapshot lists the current follower states (pointers: shipTo updates
// them under the lock).
func (s *Shipper) snapshot() []*followerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*followerState, 0, len(s.followers))
	for _, f := range s.followers {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].target.ID < out[j].target.ID })
	return out
}

// shipTo drives one follower to the journal tail (or until an error).
func (s *Shipper) shipTo(f *followerState) {
	epoch := s.cfg.Journal.Epoch()
	s.mu.Lock()
	synced, cursor, target := f.synced, f.cursor, f.target
	s.mu.Unlock()
	if !synced {
		cursor = s.cfg.Journal.OldestIndex()
		if s.cfg.FetchCursor != nil {
			state, err := s.cfg.FetchCursor(target)
			if err != nil {
				s.mu.Lock()
				f.errors++
				s.mu.Unlock()
				return
			}
			if state.Epoch == epoch && state.Cursor > cursor {
				cursor = state.Cursor
			}
		}
		s.mu.Lock()
		f.cursor, f.synced = cursor, true
		s.mu.Unlock()
	}
	scratch := shipScratch.Get().(*[]store.Alert)
	defer shipScratch.Put(scratch)
	for {
		if s.isClosed() {
			return
		}
		batch, next := s.cfg.Journal.ReadFromInto(*scratch, cursor, s.cfg.BatchSize)
		*scratch = batch[:0]
		if len(batch) == 0 {
			return // caught up
		}
		start := next - uint64(len(batch)) // ReadFrom clamps past retention gaps
		var sendStart time.Time
		if s.shipLat != nil {
			sendStart = time.Now()
		}
		ack, err := s.cfg.Send(target, ShipBatch{From: s.cfg.Self, Epoch: epoch, Start: start, Alerts: batch})
		s.mu.Lock()
		if err != nil {
			f.errors++
			f.synced = false // refetch the follower's truth before retrying
			s.mu.Unlock()
			s.cfg.Logf("replica: ship to %s failed at cursor %d: %v", target.ID, start, err)
			return
		}
		f.sent += uint64(len(batch))
		f.cursor = ack.Cursor
		cursor = ack.Cursor
		s.mu.Unlock()
		s.shipLat.ObserveSince(sendStart)
		s.batchSize.Observe(int64(len(batch)))
		lastTrace := s.shipSpans(batch, target, sendStart)
		// A follower holding the full tail closes the ship-lag window
		// Notify opened at the first unreplicated append.
		if s.shipLag != nil && ack.Cursor >= next {
			if p := s.pendingNano.Swap(0); p != 0 {
				// The batch's last traced alert exemplifies the lag
				// sample, linking the histogram back to a full trace.
				s.shipLag.ObserveExemplar(time.Now().UnixNano()-p, lastTrace)
			}
		}
		if ack.Cursor < next {
			// The follower refused part of the batch; trust its cursor
			// and retry from there on the next wake rather than spinning.
			return
		}
	}
}

// shipSpans appends the replication-hop span to the retained trace of
// every traced alert in an acked batch, returning the last trace ID
// seen (the ship-lag exemplar). The all-untraced common case is one
// string comparison per alert.
func (s *Shipper) shipSpans(batch []store.Alert, target Target, sendStart time.Time) string {
	tr := s.cfg.Tracer
	if tr == nil {
		return ""
	}
	last := ""
	var start, end int64
	var attrs string
	for _, a := range batch {
		if a.Trace == "" {
			continue
		}
		id, ok := trace.ParseID(a.Trace)
		if !ok {
			continue
		}
		if attrs == "" {
			start, end = sendStart.UnixNano(), time.Now().UnixNano()
			attrs = "follower=" + target.ID
		}
		tr.SpanKept(id, "replica-ship", start, end, attrs)
		last = a.Trace
	}
	return last
}

func (s *Shipper) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Sync runs one synchronous shipping pass (tests, shutdown flush).
func (s *Shipper) Sync() { s.pass() }

// FollowerStatus is one follower's externally visible position.
type FollowerStatus struct {
	ID     string `json:"id"`
	Cursor uint64 `json:"cursor"`
	// Lag is how many journal records the follower has not acked.
	Lag    uint64 `json:"lag"`
	Synced bool   `json:"synced"`
	Sent   uint64 `json:"sent"`
	Errors uint64 `json:"errors,omitempty"`
}

// ShipperStats snapshots the shipper.
type ShipperStats struct {
	Followers []FollowerStatus `json:"followers,omitempty"`
}

// Stats snapshots per-follower cursors and lag against the journal's
// current tail.
func (s *Shipper) Stats() ShipperStats {
	next := s.cfg.Journal.NextIndex()
	s.mu.Lock()
	defer s.mu.Unlock()
	var st ShipperStats
	ids := make([]string, 0, len(s.followers))
	for id := range s.followers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		f := s.followers[id]
		lag := uint64(0)
		if f.synced && next > f.cursor {
			lag = next - f.cursor
		} else if !f.synced {
			lag = next - s.cfg.Journal.OldestIndex()
		}
		st.Followers = append(st.Followers, FollowerStatus{
			ID: id, Cursor: f.cursor, Lag: lag, Synced: f.synced, Sent: f.sent, Errors: f.errors,
		})
	}
	return st
}

// Close stops the shipping loop. Idempotent.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
}
