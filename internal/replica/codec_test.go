package replica

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"locheat/internal/store"
	"locheat/internal/wirecodec"
)

func codecShipBatch() ShipBatch {
	t0 := time.Date(2011, 6, 20, 12, 0, 0, 0, time.UTC)
	return ShipBatch{
		From:  "node-a",
		Epoch: 1308571200000000000,
		Start: 9912,
		Alerts: []store.Alert{
			{Seq: 1, Detector: "speed", UserID: 4, VenueID: 44, At: t0, Detail: "impossible travel"},
			{Seq: 2, Detector: "throttle", UserID: 5, VenueID: 55, At: t0.Add(time.Second), Detail: "rate"},
		},
	}
}

func codecQuarEntries() []QuarEntry {
	t0 := time.Date(2011, 6, 20, 12, 0, 0, 0, time.UTC)
	return []QuarEntry{
		{User: 4, Stamp: 100, Origin: "node-a", Active: true, Record: store.QuarantineRecord{
			UserID: 4, Since: t0, Until: t0.Add(time.Hour), Reason: "alerts", Source: "policy",
		}},
		{User: 9, Stamp: 101, Origin: "node-b", Active: false}, // tombstone, zero record
	}
}

// TestShipBatchCodecEquivalence: binary and JSON round trips of a ship
// batch must agree value-for-value.
func TestShipBatchCodecEquivalence(t *testing.T) {
	b := codecShipBatch()
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var viaJSON ShipBatch
	if err := json.Unmarshal(jb, &viaJSON); err != nil {
		t.Fatal(err)
	}
	viaBin, err := DecodeShipBatch(AppendShipBatch(nil, b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaBin, viaJSON) {
		t.Fatalf("codecs disagree:\n json: %+v\n bin:  %+v", viaJSON, viaBin)
	}
}

func TestQuarEntriesCodecRoundTrip(t *testing.T) {
	entries := codecQuarEntries()
	buf := AppendQuarEntries(nil, entries)
	d := wirecodec.NewDecoder(buf)
	got := ReadQuarEntries(d)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	// Times decode UTC; the fixtures are UTC, so deep equality holds.
	if !reflect.DeepEqual(got, entries) {
		t.Fatalf("round trip:\n in:  %+v\n out: %+v", entries, got)
	}
	// Empty list round-trips as nil.
	d = wirecodec.NewDecoder(AppendQuarEntries(nil, nil))
	if got := ReadQuarEntries(d); got != nil || d.Finish() != nil {
		t.Fatalf("empty list round trip: %v, %v", got, d.Err())
	}
}

// FuzzDecodeShipBatch: the replication wire decoder must reject
// malformed/truncated input with an error — never a panic — and
// anything it accepts must re-encode canonically.
func FuzzDecodeShipBatch(f *testing.F) {
	f.Add(AppendShipBatch(nil, codecShipBatch()))
	f.Add(AppendShipBatch(nil, ShipBatch{From: "x"}))
	f.Add([]byte{})
	f.Add([]byte{wirecodec.Version, 1, 'a', 0, 0, 0xff})
	f.Fuzz(func(t *testing.T, in []byte) {
		b, err := DecodeShipBatch(in)
		if err != nil {
			return
		}
		again, err := DecodeShipBatch(AppendShipBatch(nil, b))
		if err != nil || !reflect.DeepEqual(b, again) {
			t.Fatalf("accepted batch does not round-trip: %v", err)
		}
	})
}
