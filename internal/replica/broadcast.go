// Broadcaster: cluster-wide quarantine dissemination. The quarantine
// decision is made on a user's owner node (that is where the alert
// volume accumulates), but enforcement must hold on EVERY node or a
// cheater dodges denial by checking in elsewhere. Each transition
// (quarantine, release) becomes a versioned per-user entry — monotonic
// origin-local stamp, origin ID as tie-break — fanned out immediately
// and reconciled periodically by digest exchange, so the cluster
// converges on the last-writer-wins state even across drops, restarts
// and partitions. Releases are tombstones: they persist (bounded by a
// TTL) so anti-entropy cannot resurrect a lifted quarantine.
//
// Loop prevention: applying a remote entry calls back into the local
// service, whose change listener feeds LocalChange. The broadcaster
// marks users it is mid-apply for and drops those echoes, so remote
// state is applied without being re-originated.
package replica

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"locheat/internal/simclock"
	"locheat/internal/store"
)

// BroadcastConfig parameterizes NewBroadcaster. Self, Apply and Send
// are required; zero values elsewhere take defaults.
type BroadcastConfig struct {
	// Self is this node's member ID (the Origin on originated entries).
	Self string
	// Clock stamps originated entries (default wall clock).
	Clock simclock.Clock
	// Apply installs a remote entry locally: quarantine the user per
	// Record when Active, release them when not. Called from the
	// broadcaster's apply path, never concurrently for the same user.
	Apply func(e QuarEntry)
	// Send fans a batch of entries out to the peers (best-effort; the
	// digest exchange repairs what it misses). Called from the sender
	// goroutine, never the service path.
	Send func(entries []QuarEntry)
	// TombstoneTTL bounds how long a release tombstone is remembered
	// (default 24h). Must exceed the longest realistic partition or a
	// rejoining node can resurrect a released quarantine.
	TombstoneTTL time.Duration
	// QueueSize bounds the pending-origination queue (default 1024);
	// overflow drops the oldest (digest anti-entropy re-disseminates).
	QueueSize int
	// Logf receives broadcast events. Nil discards.
	Logf func(format string, args ...any)
}

func (c BroadcastConfig) withDefaults() BroadcastConfig {
	if c.Clock == nil {
		c.Clock = simclock.Real{}
	}
	if c.TombstoneTTL <= 0 {
		c.TombstoneTTL = 24 * time.Hour
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 1024
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Broadcaster holds the versioned quarantine state and runs the
// origination queue. Safe for concurrent use.
type Broadcaster struct {
	cfg BroadcastConfig

	mu        sync.Mutex
	state     map[uint64]QuarEntry
	applying  map[uint64]int // users mid-remote-apply: suppress echo
	pending   []QuarEntry
	lastStamp int64
	closed    bool

	originated uint64
	applied    uint64
	echoes     uint64
	overflow   uint64

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// NewBroadcaster builds and starts a broadcaster.
func NewBroadcaster(cfg BroadcastConfig) *Broadcaster {
	b := &Broadcaster{
		cfg:      cfg.withDefaults(),
		state:    make(map[uint64]QuarEntry),
		applying: make(map[uint64]int),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.sender()
	return b
}

// stampLocked returns a strictly monotonic origin-local stamp.
func (b *Broadcaster) stampLocked() int64 {
	s := b.cfg.Clock.Now().UnixNano()
	if s <= b.lastStamp {
		s = b.lastStamp + 1
	}
	b.lastStamp = s
	return s
}

// LocalChange originates one local quarantine transition. Called from
// the service's change listener — it must never block, so the entry is
// queued for the sender goroutine. Echoes of remote applies are
// dropped here.
func (b *Broadcaster) LocalChange(user uint64, active bool, rec store.QuarantineRecord) {
	b.LocalChangeTraced(user, active, rec, "")
}

// LocalChangeTraced is LocalChange carrying the trace ID of the alert
// that caused the transition (empty when unsampled or unknown) — pure
// observability freight on the broadcast entry.
func (b *Broadcaster) LocalChangeTraced(user uint64, active bool, rec store.QuarantineRecord, traceID string) {
	b.mu.Lock()
	if b.applying[user] > 0 {
		b.echoes++
		b.mu.Unlock()
		return
	}
	e := QuarEntry{User: user, Stamp: b.stampLocked(), Origin: b.cfg.Self, Active: active, Record: rec, Trace: traceID}
	b.state[user] = e
	b.originated++
	if len(b.pending) >= b.cfg.QueueSize {
		b.pending = b.pending[1:]
		b.overflow++
	}
	b.pending = append(b.pending, e)
	b.mu.Unlock()
	select {
	case b.kick <- struct{}{}:
	default:
	}
}

// sender drains the origination queue into cfg.Send.
func (b *Broadcaster) sender() {
	defer close(b.done)
	for {
		select {
		case <-b.stop:
			b.flushPending()
			return
		case <-b.kick:
			b.flushPending()
		}
	}
}

func (b *Broadcaster) flushPending() {
	b.mu.Lock()
	batch := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(batch) > 0 && b.cfg.Send != nil {
		b.cfg.Send(batch)
	}
}

// Flush synchronously drains the origination queue (tests, shutdown).
func (b *Broadcaster) Flush() { b.flushPending() }

// ApplyRemote merges a batch of remote entries, installing every one
// that wins LWW against local knowledge. Returns how many were
// applied.
func (b *Broadcaster) ApplyRemote(entries []QuarEntry) int {
	return len(b.ApplyRemoteDetailed(entries))
}

// ApplyRemoteDetailed is ApplyRemote returning the entries that
// actually won LWW and were installed — the set a ring-routed receiver
// relays onward. An entry the receiver already knew produces nothing,
// which is what terminates the relay spread: once the LWW state stops
// changing, forwarding stops. Returns nil when nothing applied.
func (b *Broadcaster) ApplyRemoteDetailed(entries []QuarEntry) []QuarEntry {
	var won []QuarEntry
	for _, e := range entries {
		b.mu.Lock()
		cur, known := b.state[e.User]
		if known && !e.newer(cur) {
			b.mu.Unlock()
			continue
		}
		b.state[e.User] = e
		if e.Stamp > b.lastStamp {
			// Adopt the highest stamp seen so our next origination
			// orders after everything we know about, even across
			// clock skew between origins.
			b.lastStamp = e.Stamp
		}
		b.applying[e.User]++
		b.applied++
		b.mu.Unlock()

		if b.cfg.Apply != nil {
			b.cfg.Apply(e)
		}

		b.mu.Lock()
		if b.applying[e.User]--; b.applying[e.User] <= 0 {
			delete(b.applying, e.User)
		}
		b.mu.Unlock()
		won = append(won, e)
	}
	return won
}

// Digest snapshots the full versioned state (tombstones included),
// sweeping expired tombstones on the way. Small by construction: the
// state is bounded by the active quarantine set plus TTL-bounded
// tombstones.
func (b *Broadcaster) Digest() []QuarEntry {
	now := b.cfg.Clock.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]QuarEntry, 0, len(b.state))
	for user, e := range b.state {
		if b.expiredLocked(e, now) {
			delete(b.state, user)
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

// DigestHash returns a 16-byte hash identifying the digest state:
// fnv-128a over the canonical (sorted, binary) encoding of Digest().
// Two nodes in sync produce the same hash, so a heartbeat can carry
// these 16 bytes instead of the full digest and exchange entries only
// on mismatch. The hash is content-derived, not versioned — any state
// divergence, in either direction, changes it on at least one side.
func (b *Broadcaster) DigestHash() []byte {
	h := fnv.New128a()
	h.Write(AppendQuarEntries(nil, b.Digest()))
	return h.Sum(nil)
}

// expiredLocked reports whether an entry is inert and forgettable: a
// tombstone past the TTL, or an active entry whose quarantine expired
// a TTL ago (the service expired it locally without an event).
func (b *Broadcaster) expiredLocked(e QuarEntry, now time.Time) bool {
	if !e.Active {
		return now.Sub(time.Unix(0, e.Stamp)) > b.cfg.TombstoneTTL
	}
	return !e.Record.Until.IsZero() && now.Sub(e.Record.Until) > b.cfg.TombstoneTTL
}

// MergeDigest runs the receiving half of a digest exchange: apply
// every remote entry that wins LWW, and return the entries where this
// node knows something newer (the reply that repairs the sender).
func (b *Broadcaster) MergeDigest(entries []QuarEntry) (reply []QuarEntry, applied int) {
	applied = b.ApplyRemote(entries)
	remote := make(map[uint64]QuarEntry, len(entries))
	for _, e := range entries {
		remote[e.User] = e
	}
	for _, e := range b.Digest() {
		if r, ok := remote[e.User]; !ok || e.newer(r) {
			reply = append(reply, e)
		}
	}
	return reply, applied
}

// BroadcastStats snapshots the broadcaster.
type BroadcastStats struct {
	// Tracked is the versioned-state size (active + tombstones).
	Tracked int `json:"tracked"`
	// Originated counts local transitions broadcast; Applied counts
	// remote entries installed locally; Echoes counts apply echoes
	// suppressed; Overflow counts originations dropped by a full queue
	// (repaired by digest exchange).
	Originated uint64 `json:"originated"`
	Applied    uint64 `json:"applied"`
	Echoes     uint64 `json:"echoes,omitempty"`
	Overflow   uint64 `json:"overflow,omitempty"`
}

// Stats snapshots the broadcaster's counters.
func (b *Broadcaster) Stats() BroadcastStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BroadcastStats{
		Tracked:    len(b.state),
		Originated: b.originated,
		Applied:    b.applied,
		Echoes:     b.echoes,
		Overflow:   b.overflow,
	}
}

// Close stops the sender after a final drain. Idempotent.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
}
