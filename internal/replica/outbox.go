// Outbox: the forwarder's bounded on-disk spill. The cross-node
// forwarding path is deliberately drop-on-full and drop-on-error —
// nothing may block the check-in path — but dropped events used to be
// gone. The outbox catches them instead: one append-only file per
// destination peer, length-prefixed opaque payloads, bounded by a
// per-peer byte cap (over the cap the event really is dropped, and
// counted — the bound is the contract). On peer recovery the caller
// drains the file back through its delivery path; payloads the
// delivery refuses are compacted back so a half-successful drain loses
// nothing. The outbox is payload-agnostic (it stores bytes) so this
// package does not depend on the cluster's wire types.
package replica

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// maxOutboxRecordBytes bounds one payload; larger prefixes are read as
// corruption.
const maxOutboxRecordBytes = 1 << 20

// OutboxConfig parameterizes OpenOutbox. Zero values take defaults.
type OutboxConfig struct {
	// Dir is the spill directory, created if missing. Required.
	Dir string
	// MaxBytesPerPeer caps one peer's spill file (default 4 MiB).
	// Appends past the cap are dropped and counted.
	MaxBytesPerPeer int64
	// Logf receives spill events. Nil discards.
	Logf func(format string, args ...any)
}

func (c OutboxConfig) withDefaults() OutboxConfig {
	if c.MaxBytesPerPeer <= 0 {
		c.MaxBytesPerPeer = 4 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// peerSpill is one destination's spill file bookkeeping. Each peer has
// its own lock: a long drain compaction (file re-read + fsync) on one
// peer must not block the enqueue-path Append of another — the
// forwarder contract says spills never block the check-in path beyond
// their own peer's file.
type peerSpill struct {
	mu      sync.Mutex
	peer    string
	path    string
	size    int64
	records int
}

// Outbox is the per-peer on-disk spill. Safe for concurrent use.
type Outbox struct {
	cfg OutboxConfig

	// mu guards only the peers map; file state is per-peer.
	mu    sync.Mutex
	peers map[string]*peerSpill

	spilled   atomic.Uint64
	dropped   atomic.Uint64
	delivered atomic.Uint64
	requeued  atomic.Uint64
	ioErrors  atomic.Uint64
}

// OpenOutbox opens (creating if missing) the spill directory and
// indexes any spill files a previous process left behind — undelivered
// events survive a daemon restart.
func OpenOutbox(cfg OutboxConfig) (*Outbox, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("outbox: empty dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("outbox: %w", err)
	}
	o := &Outbox{cfg: cfg, peers: make(map[string]*peerSpill)}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("outbox: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".obx") {
			continue
		}
		path := filepath.Join(cfg.Dir, name)
		peer, payloads, size := readSpill(path, cfg.Logf)
		if peer == "" {
			continue
		}
		o.peers[peer] = &peerSpill{peer: peer, path: path, size: size, records: len(payloads)}
	}
	return o, nil
}

// spill returns (creating if needed) the peer's bookkeeping.
func (o *Outbox) spill(peer string) *peerSpill {
	o.mu.Lock()
	defer o.mu.Unlock()
	if ps, ok := o.peers[peer]; ok {
		return ps
	}
	ps := &peerSpill{
		peer: peer,
		path: filepath.Join(o.cfg.Dir, sanitizeDirName(peer)+".obx"),
	}
	o.peers[peer] = ps
	return ps
}

// Append spills one payload for peer. Returns false when the per-peer
// cap refused it (the payload is dropped and counted).
func (o *Outbox) Append(peer string, payload []byte) bool {
	ps := o.spill(peer)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	rec := encodeSpillRecord(peer, payload, ps.size == 0)
	if ps.size+int64(len(rec)) > o.cfg.MaxBytesPerPeer {
		o.dropped.Add(1)
		return false
	}
	f, err := os.OpenFile(ps.path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		o.ioErrors.Add(1)
		o.cfg.Logf("outbox: open %s: %v", ps.path, err)
		return false
	}
	defer f.Close()
	if _, err := f.Write(rec); err != nil {
		o.ioErrors.Add(1)
		o.cfg.Logf("outbox: append %s: %v", ps.path, err)
		return false
	}
	ps.size += int64(len(rec))
	ps.records++
	o.spilled.Add(1)
	return true
}

// encodeSpillRecord frames one payload; the file's first record is a
// header naming the peer (filename sanitization is lossy, the header
// is not).
func encodeSpillRecord(peer string, payload []byte, first bool) []byte {
	var out []byte
	if first {
		out = frame([]byte("peer:" + peer))
	}
	return append(out, frame(payload)...)
}

func frame(payload []byte) []byte {
	rec := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(rec, uint32(len(payload)))
	copy(rec[4:], payload)
	return rec
}

// readSpill loads a spill file: the peer named by its header record,
// the queued payloads, and the byte size consumed. Damage keeps the
// good prefix, like every log in this codebase.
func readSpill(path string, logf func(string, ...any)) (peer string, payloads [][]byte, size int64) {
	f, err := os.Open(path)
	if err != nil {
		logf("outbox: read %s: %v", path, err)
		return "", nil, 0
	}
	defer f.Close()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
			if err != io.EOF {
				logf("outbox: %s: damaged tail; keeping %d records", path, len(payloads))
			}
			return peer, payloads, size
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxOutboxRecordBytes {
			logf("outbox: %s: garbage length prefix; keeping %d records", path, len(payloads))
			return peer, payloads, size
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(f, buf); err != nil {
			logf("outbox: %s: torn record; keeping %d records", path, len(payloads))
			return peer, payloads, size
		}
		size += 4 + int64(n)
		if peer == "" && strings.HasPrefix(string(buf), "peer:") {
			peer = strings.TrimPrefix(string(buf), "peer:")
			continue
		}
		payloads = append(payloads, buf)
	}
}

// Drain replays every spilled payload for peer through deliver, in
// spill order. Payloads deliver reports false for are compacted back
// into a fresh spill file (order preserved); delivered ones are gone.
// Returns (delivered, requeued). A crash mid-drain re-replays from the
// original file — duplicates, not loss; the receiver's dedupe absorbs
// them.
func (o *Outbox) Drain(peer string, deliver func(payload []byte) bool) (int, int) {
	o.mu.Lock()
	ps, ok := o.peers[peer]
	o.mu.Unlock()
	if !ok {
		return 0, 0
	}
	ps.mu.Lock()
	if ps.records == 0 {
		ps.mu.Unlock()
		return 0, 0
	}
	_, payloads, _ := readSpill(ps.path, o.cfg.Logf)
	ps.mu.Unlock()

	// Deliver outside the lock: delivery may take real time (HTTP), and
	// a delivery that spills back to this very peer (full queue on the
	// re-forward) must be able to Append.
	var failed [][]byte
	delivered := 0
	for _, p := range payloads {
		if deliver(p) {
			delivered++
		} else {
			failed = append(failed, p)
		}
	}

	requeued := len(failed)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	// Payloads spilled while delivery ran are a tail beyond the prefix
	// we drained; carry them into the rewrite or they would be lost.
	_, current, _ := readSpill(ps.path, o.cfg.Logf)
	if len(current) > len(payloads) {
		failed = append(failed, current[len(payloads):]...)
	}
	// Rewrite the remainder atomically; a failure leaves the original
	// file (and a future duplicate delivery) rather than losing events.
	if err := writeSpill(ps.path, peer, failed); err != nil {
		o.ioErrors.Add(1)
		o.cfg.Logf("outbox: compact %s: %v", ps.path, err)
		return delivered, requeued
	}
	ps.records = len(failed)
	ps.size = spillSize(peer, failed)
	o.delivered.Add(uint64(delivered))
	o.requeued.Add(uint64(requeued))
	return delivered, requeued
}

// writeSpill atomically replaces the spill file with the given
// payloads (removing it when empty).
func writeSpill(path, peer string, payloads [][]byte) error {
	if len(payloads) == 0 {
		err := os.Remove(path)
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".obx-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(frame([]byte("peer:" + peer))); err != nil {
		tmp.Close()
		return err
	}
	for _, p := range payloads {
		if _, err := tmp.Write(frame(p)); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

func spillSize(peer string, payloads [][]byte) int64 {
	if len(payloads) == 0 {
		return 0
	}
	size := int64(4 + len("peer:"+peer))
	for _, p := range payloads {
		size += 4 + int64(len(p))
	}
	return size
}

// snapshot lists the current peer spills.
func (o *Outbox) snapshot() []*peerSpill {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*peerSpill, 0, len(o.peers))
	for _, ps := range o.peers {
		out = append(out, ps)
	}
	return out
}

// Peers lists destinations with spilled payloads, sorted.
func (o *Outbox) Peers() []string {
	var out []string
	for _, ps := range o.snapshot() {
		ps.mu.Lock()
		n := ps.records
		ps.mu.Unlock()
		if n > 0 {
			out = append(out, ps.peer)
		}
	}
	sort.Strings(out)
	return out
}

// Depth reports how many payloads are spilled for peer.
func (o *Outbox) Depth(peer string) int {
	o.mu.Lock()
	ps, ok := o.peers[peer]
	o.mu.Unlock()
	if !ok {
		return 0
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.records
}

// OutboxStats snapshots the outbox counters.
type OutboxStats struct {
	// Queued is the total payloads currently spilled across peers.
	Queued int `json:"queued"`
	// Spilled counts payloads accepted onto disk; Dropped counts
	// payloads refused by the per-peer cap; Delivered counts payloads
	// drained successfully; Requeued counts drain failures compacted
	// back.
	Spilled   uint64 `json:"spilled"`
	Dropped   uint64 `json:"dropped,omitempty"`
	Delivered uint64 `json:"delivered"`
	Requeued  uint64 `json:"requeued,omitempty"`
	IOErrors  uint64 `json:"ioErrors,omitempty"`
}

// Stats snapshots the outbox.
func (o *Outbox) Stats() OutboxStats {
	st := OutboxStats{
		Spilled:   o.spilled.Load(),
		Dropped:   o.dropped.Load(),
		Delivered: o.delivered.Load(),
		Requeued:  o.requeued.Load(),
		IOErrors:  o.ioErrors.Load(),
	}
	for _, ps := range o.snapshot() {
		ps.mu.Lock()
		st.Queued += ps.records
		ps.mu.Unlock()
	}
	return st
}
