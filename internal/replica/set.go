// Set: the receiving half of journal replication. One replica log per
// primary, each an ordinary store.AlertJournal in its own subdirectory
// plus a durable cursor file:
//
//	<dir>/replica-<primary>/alerts-00000001.seg ...
//	<dir>/replica-<primary>/cursor.json          {epoch, cursor}
//
// Apply is idempotent against the cursor: a batch overlapping records
// already applied has its duplicate prefix skipped, a batch starting
// past the cursor is accepted with the gap counted (the primary's
// retention outran us — nothing to fetch), and a batch from a new
// epoch resets the replica (the primary restarted; its index space
// began again and it will re-ship everything it retains). Promotion is
// a read-side decision: the owner of a Set serves Query results for
// primaries it considers dead, which is exactly how a killed node's
// alert history stays visible in merged views.
package replica

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"locheat/internal/store"
)

// SetConfig parameterizes OpenSet. Zero values take defaults.
type SetConfig struct {
	// Dir is the replica root, created if missing. Required.
	Dir string
	// SegmentBytes / MaxSegments shape each replica log (defaults match
	// store.JournalConfig; size retention at least as large as the
	// primary's or the replica forgets history the primary still has).
	SegmentBytes int64
	MaxSegments  int
	// MirrorAlerts bounds each replica log's in-memory mirror (default
	// 1024 — replicas are mostly written, rarely queried).
	MirrorAlerts int
	// FsyncEvery is each replica log's mid-batch fsync cadence (default
	// 1<<20, i.e. effectively never). Replica durability is defined by
	// Apply's explicit per-batch Flush + cursor save BEFORE the ack —
	// a crash mid-batch just re-ships from the acked cursor — so the
	// journal's own cadence would only add fsyncs the protocol never
	// relies on.
	FsyncEvery int
	// Logf receives replica lifecycle events. Nil discards.
	Logf func(format string, args ...any)
}

func (c SetConfig) withDefaults() SetConfig {
	if c.MirrorAlerts == 0 {
		c.MirrorAlerts = 1024
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 1 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// replicaLog is one primary's replica: its journal and durable cursor.
type replicaLog struct {
	primary string
	dir     string
	journal *store.AlertJournal
	state   CursorState
	gapped  uint64 // records lost to primary retention before we saw them
	resets  uint64 // epoch resets observed
}

// Set manages this node's replica logs, one per primary it follows.
// Safe for concurrent use.
type Set struct {
	cfg SetConfig

	mu   sync.Mutex
	logs map[string]*replicaLog

	applied  uint64 // records appended into replica logs
	skipped  uint64 // duplicate records dropped by the cursor check
	applyErr uint64
}

// OpenSet opens (creating if needed) the replica root and reopens
// every replica log found there.
func OpenSet(cfg SetConfig) (*Set, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("replica set: empty dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica set: %w", err)
	}
	s := &Set{cfg: cfg, logs: make(map[string]*replicaLog)}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("replica set: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "replica-") {
			continue
		}
		dir := filepath.Join(cfg.Dir, e.Name())
		state, primary, err := loadCursor(filepath.Join(dir, "cursor.json"))
		if err != nil || primary == "" {
			cfg.Logf("replica set: skipping %s: unreadable cursor (%v)", dir, err)
			continue
		}
		rl, err := s.openLog(primary, dir, state)
		if err != nil {
			cfg.Logf("replica set: skipping %s: %v", dir, err)
			continue
		}
		s.logs[primary] = rl
	}
	return s, nil
}

// cursorFile is the on-disk cursor format. Primary is stored inside so
// directory-name sanitization never has to be reversible.
type cursorFile struct {
	Primary string `json:"primary"`
	Epoch   int64  `json:"epoch"`
	Cursor  uint64 `json:"cursor"`
}

func loadCursor(path string) (CursorState, string, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return CursorState{}, "", err
	}
	var cf cursorFile
	if err := json.Unmarshal(buf, &cf); err != nil {
		return CursorState{}, "", err
	}
	return CursorState{Epoch: cf.Epoch, Cursor: cf.Cursor}, cf.Primary, nil
}

// saveCursor atomically rewrites the cursor file (write temp, fsync,
// rename) so a crash mid-save keeps the previous cursor.
func saveCursor(path, primary string, state CursorState) error {
	buf, err := json.Marshal(cursorFile{Primary: primary, Epoch: state.Epoch, Cursor: state.Cursor})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cursor-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

// sanitizeDirName keeps member IDs filesystem-safe; anything outside
// the safe set is hex-escaped. Collisions are impossible because the
// escape character itself is escaped.
func sanitizeDirName(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '.' || c == '-' || c == '_' {
			if c != '_' {
				b.WriteByte(c)
				continue
			}
		}
		fmt.Fprintf(&b, "_%02x", c)
	}
	return b.String()
}

func (s *Set) openLog(primary, dir string, state CursorState) (*replicaLog, error) {
	j, err := store.OpenAlertJournal(store.JournalConfig{
		Dir:          dir,
		SegmentBytes: s.cfg.SegmentBytes,
		MaxSegments:  s.cfg.MaxSegments,
		MirrorAlerts: s.cfg.MirrorAlerts,
		FsyncEvery:   s.cfg.FsyncEvery,
		Logf:         s.cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &replicaLog{primary: primary, dir: dir, journal: j, state: state}, nil
}

// getLocked returns (creating if needed) the primary's replica log.
func (s *Set) getLocked(primary string) (*replicaLog, error) {
	if rl, ok := s.logs[primary]; ok {
		return rl, nil
	}
	dir := filepath.Join(s.cfg.Dir, "replica-"+sanitizeDirName(primary))
	rl, err := s.openLog(primary, dir, CursorState{})
	if err != nil {
		return nil, err
	}
	s.logs[primary] = rl
	return rl, nil
}

// Apply installs one ship batch and returns the cursor the shipper
// should resume from. See the package comment for the overlap, gap and
// epoch-reset semantics.
func (s *Set) Apply(from string, epoch int64, start uint64, alerts []store.Alert) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rl, err := s.getLocked(from)
	if err != nil {
		s.applyErr++
		return 0, fmt.Errorf("replica set: open log for %s: %w", from, err)
	}
	if rl.state.Epoch != epoch {
		// Primary restarted: its global index space began again. Drop
		// the old replica and follow the new epoch from the start the
		// primary offers (its oldest retained record). The primary
		// replays its own surviving history at open, so nothing that
		// still exists is lost — and merged views dedupe whatever the
		// old replica also held.
		if rl.state.Epoch != 0 {
			rl.resets++
			s.cfg.Logf("replica set: %s epoch %d -> %d, resetting replica", from, rl.state.Epoch, epoch)
			rl.journal.Close()
			if err := os.RemoveAll(rl.dir); err != nil {
				s.applyErr++
				return 0, fmt.Errorf("replica set: reset %s: %w", from, err)
			}
			fresh, err := s.openLog(from, rl.dir, CursorState{})
			if err != nil {
				delete(s.logs, from)
				s.applyErr++
				return 0, fmt.Errorf("replica set: reset %s: %w", from, err)
			}
			fresh.resets = rl.resets
			fresh.gapped = rl.gapped
			s.logs[from] = fresh
			rl = fresh
		}
		rl.state = CursorState{Epoch: epoch, Cursor: start}
	}
	if start > rl.state.Cursor {
		rl.gapped += start - rl.state.Cursor
		rl.state.Cursor = start
	}
	// Skip the already-applied prefix, then land the rest as ONE batch
	// append (one framed write per segment instead of a syscall per
	// record — the follower's half of the hot path).
	fresh := alerts
	if overlap := rl.state.Cursor - start; overlap > 0 {
		if overlap >= uint64(len(alerts)) {
			s.skipped += uint64(len(alerts))
			fresh = nil
		} else {
			s.skipped += overlap
			fresh = alerts[overlap:]
		}
	}
	n, err := rl.journal.AppendBatch(fresh)
	rl.state.Cursor += uint64(n)
	s.applied += uint64(n)
	if err != nil {
		s.applyErr++
		return rl.state.Cursor, fmt.Errorf("replica set: append for %s: %w", from, err)
	}
	if err := rl.journal.Flush(); err != nil {
		s.applyErr++
	}
	if err := saveCursor(filepath.Join(rl.dir, "cursor.json"), from, rl.state); err != nil {
		s.applyErr++
		s.cfg.Logf("replica set: save cursor for %s: %v", from, err)
	}
	return rl.state.Cursor, nil
}

// Cursor reports the durable position held for primary (zero state if
// none).
func (s *Set) Cursor(primary string) CursorState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rl, ok := s.logs[primary]; ok {
		return rl.state
	}
	return CursorState{}
}

// ReadFrom reads up to max alerts from primary's replica log, starting
// at a position in the PRIMARY's cursor space, appending into scratch.
// Returns the batch and the primary-space cursor after the last record
// read (== start when nothing is held past it). This is the chain
// re-replication read path: a promoted replica re-ships its copy of a
// dead primary's log to the new successor set, and because both sides
// number records in the primary's space, the receiver's normal Apply
// dedupe (cursor overlap skip) makes the repair idempotent.
//
// The mapping from primary space to local journal indexes is the tail
// offset cursor−NextIndex: the replica journal holds the suffix of the
// primary's log it has seen, contiguous at the tail. Records that
// predate a retention gap may be labeled high by the gap width — the
// receiver then over-skips rather than duplicating, which matches the
// gap's existing semantics (the primary's retention outran us; those
// records were already lost to the chain).
func (s *Set) ReadFrom(primary string, scratch []store.Alert, start uint64, max int) ([]store.Alert, uint64) {
	s.mu.Lock()
	rl, ok := s.logs[primary]
	var next, cursor uint64
	if ok {
		next = rl.journal.NextIndex()
		cursor = rl.state.Cursor
	}
	s.mu.Unlock()
	if !ok {
		return scratch[:0], start
	}
	if cursor < next {
		// Never happens in practice (the cursor advances with every
		// append), but a negative offset must not underflow.
		return scratch[:0], start
	}
	offset := cursor - next
	local := uint64(0)
	if start > offset {
		local = start - offset
	}
	batch, localNext := rl.journal.ReadFromInto(scratch, local, max)
	return batch, localNext + offset
}

// Query answers an alert query from primary's replica log (empty if no
// replica is held). This is the promotion read path: the caller
// decides WHEN a replica should serve (its primary is gone), the set
// only answers from what it holds.
func (s *Set) Query(primary string, q store.AlertQuery) ([]store.Alert, int) {
	s.mu.Lock()
	rl, ok := s.logs[primary]
	s.mu.Unlock()
	if !ok {
		return nil, 0
	}
	return rl.journal.Query(q)
}

// Primaries lists the primaries this set holds replicas for, sorted.
func (s *Set) Primaries() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.logs))
	for p := range s.logs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ReplicaStatus is one replica log's externally visible state.
type ReplicaStatus struct {
	Primary  string `json:"primary"`
	Epoch    int64  `json:"epoch"`
	Cursor   uint64 `json:"cursor"`
	Retained int    `json:"retained"`
	Gapped   uint64 `json:"gapped,omitempty"`
	Resets   uint64 `json:"resets,omitempty"`
}

// SetStats snapshots the set's counters and per-replica status.
type SetStats struct {
	Applied  uint64          `json:"applied"`
	Skipped  uint64          `json:"skipped,omitempty"`
	Errors   uint64          `json:"errors,omitempty"`
	Replicas []ReplicaStatus `json:"replicas,omitempty"`
}

// Stats snapshots the set.
func (s *Set) Stats() SetStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SetStats{Applied: s.applied, Skipped: s.skipped, Errors: s.applyErr}
	for _, p := range s.primariesLocked() {
		rl := s.logs[p]
		st.Replicas = append(st.Replicas, ReplicaStatus{
			Primary:  p,
			Epoch:    rl.state.Epoch,
			Cursor:   rl.state.Cursor,
			Retained: rl.journal.Stats().Retained,
			Gapped:   rl.gapped,
			Resets:   rl.resets,
		})
	}
	return st
}

func (s *Set) primariesLocked() []string {
	out := make([]string, 0, len(s.logs))
	for p := range s.logs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Close flushes and closes every replica log. Idempotent.
func (s *Set) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rl := range s.logs {
		rl.journal.Close()
	}
}
