package cheatercode

import (
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/simclock"
)

func obsAt(user, venue uint64, t time.Time, p geo.Point) Observation {
	return Observation{UserID: user, VenueID: venue, At: t, Location: p}
}

func TestFrequentCheckinRule(t *testing.T) {
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	p := geo.Point{Lat: 35.08, Lon: -106.65}

	if v := d.Check(obsAt(1, 100, t0, p)); v != nil {
		t.Fatalf("first check-in flagged: %v", v)
	}
	// Same venue 30 minutes later: denied.
	v := d.Check(obsAt(1, 100, t0.Add(30*time.Minute), p))
	if v == nil || v.Rule != RuleFrequentCheckin {
		t.Fatalf("30-min revisit = %v, want frequent-checkin violation", v)
	}
	// Same venue exactly one hour later: allowed (paper: "cannot check
	// in to the same venue again within one hour").
	if v := d.Check(obsAt(1, 100, t0.Add(time.Hour), p)); v != nil {
		t.Fatalf("1-hour revisit flagged: %v", v)
	}
}

func TestFrequentCheckinDifferentVenueAllowed(t *testing.T) {
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	p := geo.Point{Lat: 35.08, Lon: -106.65}
	if v := d.Check(obsAt(1, 100, t0, p)); v != nil {
		t.Fatalf("unexpected violation: %v", v)
	}
	// A different venue nearby after 10 minutes is fine (not rapid-fire
	// either: only the 2nd check-in).
	q := p.Destination(90, 400)
	if v := d.Check(obsAt(1, 101, t0.Add(10*time.Minute), q)); v != nil {
		t.Fatalf("different-venue check-in flagged: %v", v)
	}
}

func TestFrequentCheckinPerUser(t *testing.T) {
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	p := geo.Point{Lat: 35.08, Lon: -106.65}
	if v := d.Check(obsAt(1, 100, t0, p)); v != nil {
		t.Fatalf("user 1: %v", v)
	}
	// A different user at the same venue immediately after is fine.
	if v := d.Check(obsAt(2, 100, t0.Add(time.Minute), p)); v != nil {
		t.Fatalf("user 2 blocked by user 1's history: %v", v)
	}
}

func TestSuperhumanSpeed(t *testing.T) {
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	abq, _ := geo.FindCity("Albuquerque")
	sf, _ := geo.FindCity("San Francisco")

	if v := d.Check(obsAt(1, 100, t0, abq.Center)); v != nil {
		t.Fatalf("first check-in flagged: %v", v)
	}
	// Albuquerque -> San Francisco (~1440 km) in 10 minutes: flagged.
	v := d.Check(obsAt(1, 200, t0.Add(10*time.Minute), sf.Center))
	if v == nil || v.Rule != RuleSuperhumanSpeed {
		t.Fatalf("teleport = %v, want superhuman-speed violation", v)
	}
	// The denied check-in must not poison history: a sane follow-up
	// near Albuquerque is still accepted.
	near := abq.Center.Destination(0, 2000)
	if v := d.Check(obsAt(1, 300, t0.Add(time.Hour), near)); v != nil {
		t.Fatalf("post-denial local check-in flagged: %v", v)
	}
}

func TestSuperhumanSpeedPaperOperatingPoint(t *testing.T) {
	// §3.3: "we can check into venues less than 1 mile apart with a
	// 5-minute interval without being detected as a cheater."
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	p := geo.Point{Lat: 35.06, Lon: -106.62}
	if v := d.Check(obsAt(1, 1, t0, p)); v != nil {
		t.Fatalf("seed check-in: %v", v)
	}
	q := p.Destination(45, 0.9*geo.MetersPerMile)
	if v := d.Check(obsAt(1, 2, t0.Add(5*time.Minute), q)); v != nil {
		t.Fatalf("0.9 mile / 5 min flagged: %v (paper says this passes)", v)
	}
}

func TestSuperhumanSpeedInstantTeleport(t *testing.T) {
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	p := geo.Point{Lat: 35.06, Lon: -106.62}
	if v := d.Check(obsAt(1, 1, t0, p)); v != nil {
		t.Fatalf("seed: %v", v)
	}
	// Zero elapsed time, nonzero distance: infinite speed, flagged.
	v := d.Check(obsAt(1, 2, t0, p.Destination(0, 5000)))
	if v == nil || v.Rule != RuleSuperhumanSpeed {
		t.Fatalf("instant teleport = %v, want superhuman-speed", v)
	}
}

func TestRapidFireFourthCheckinFlagged(t *testing.T) {
	// §2.3: "If a user checks into multiple venues that are located
	// within a 180 meters by 180 meters square area with a 1 minute
	// interval, Foursquare issues a warning about rapid-fire check-ins
	// on the fourth check-in."
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	base := geo.Point{Lat: 35.08, Lon: -106.62}
	pts := []geo.Point{
		base,
		base.Destination(90, 40),
		base.Destination(180, 40),
		base.Destination(270, 40),
	}
	for i := 0; i < 3; i++ {
		v := d.Check(obsAt(1, uint64(10+i), t0.Add(time.Duration(i)*time.Minute), pts[i]))
		if v != nil {
			t.Fatalf("check-in %d flagged early: %v", i+1, v)
		}
	}
	v := d.Check(obsAt(1, 13, t0.Add(3*time.Minute), pts[3]))
	if v == nil || v.Rule != RuleRapidFire {
		t.Fatalf("4th rapid check-in = %v, want rapid-fire violation", v)
	}
}

func TestRapidFireSlowSequenceAllowed(t *testing.T) {
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	base := geo.Point{Lat: 35.08, Lon: -106.62}
	// Same four venues but 5 minutes apart: the paper's automated tour
	// cadence; must pass.
	for i := 0; i < 4; i++ {
		p := base.Destination(float64(i)*90, 40)
		v := d.Check(obsAt(1, uint64(20+i), t0.Add(time.Duration(i*5)*time.Minute), p))
		if v != nil {
			t.Fatalf("slow check-in %d flagged: %v", i+1, v)
		}
	}
}

func TestRapidFireSpreadOutAllowed(t *testing.T) {
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	base := geo.Point{Lat: 35.08, Lon: -106.62}
	// 1-minute cadence but venues ~400 m apart: outside the 180 m
	// square, but watch out for the speed rule: 400 m/min = 6.7 m/s is
	// under the 15 m/s limit.
	for i := 0; i < 4; i++ {
		p := base.Destination(90, float64(i)*400)
		v := d.Check(obsAt(1, uint64(30+i), t0.Add(time.Duration(i)*time.Minute), p))
		if v != nil {
			t.Fatalf("spread-out check-in %d flagged: %v", i+1, v)
		}
	}
}

func TestRapidFireCountDisabled(t *testing.T) {
	r := RapidFireRule{SquareMeters: 180, Interval: time.Minute, Count: 1}
	if v := r.Check(nil, obsAt(1, 1, simclock.Epoch(), geo.Point{})); v != nil {
		t.Errorf("Count<=1 must disable the rule, got %v", v)
	}
}

func TestDetectorStats(t *testing.T) {
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	p := geo.Point{Lat: 35.08, Lon: -106.65}
	_ = d.Check(obsAt(1, 1, t0, p))
	_ = d.Check(obsAt(1, 1, t0.Add(time.Minute), p)) // frequent
	checked, flagged := d.Stats()
	if checked != 2 {
		t.Errorf("checked = %d, want 2", checked)
	}
	if flagged[RuleFrequentCheckin] != 1 {
		t.Errorf("frequent-checkin count = %d, want 1", flagged[RuleFrequentCheckin])
	}
}

func TestDetectorReset(t *testing.T) {
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	p := geo.Point{Lat: 35.08, Lon: -106.65}
	_ = d.Check(obsAt(1, 1, t0, p))
	d.Reset()
	// After reset, the same venue immediately again is a "first"
	// check-in and passes.
	if v := d.Check(obsAt(1, 1, t0.Add(time.Second), p)); v != nil {
		t.Errorf("post-reset check-in flagged: %v", v)
	}
}

func TestHistoryLimitBounded(t *testing.T) {
	d := NewDetectorWithRules(8, FrequentCheckinRule{Cooldown: time.Hour})
	t0 := simclock.Epoch()
	p := geo.Point{Lat: 35.08, Lon: -106.65}
	for i := 0; i < 100; i++ {
		v := d.Check(obsAt(1, uint64(i), t0.Add(time.Duration(i)*2*time.Hour), p))
		if v != nil {
			t.Fatalf("check-in %d flagged: %v", i, v)
		}
	}
	d.mu.Lock()
	n := len(d.history[1])
	d.mu.Unlock()
	if n > 8 {
		t.Errorf("history grew to %d entries, limit 8", n)
	}
}

func TestViolationError(t *testing.T) {
	v := &Violation{Rule: RuleRapidFire, Detail: "x"}
	if v.Error() == "" {
		t.Error("Violation.Error must be non-empty")
	}
}

func TestEvictIdle(t *testing.T) {
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	base := geo.Point{Lat: 35.08, Lon: -106.62}
	// Three users, last seen at t0, t0+1h, t0+2h.
	for u := uint64(1); u <= 3; u++ {
		at := t0.Add(time.Duration(u-1) * time.Hour)
		if v := d.Check(obsAt(u, u, at, base)); v != nil {
			t.Fatalf("setup check flagged: %v", v)
		}
	}
	if d.TrackedUsers() != 3 {
		t.Fatalf("tracked %d, want 3", d.TrackedUsers())
	}
	if n := d.EvictIdle(t0.Add(90 * time.Minute)); n != 2 {
		t.Fatalf("evicted %d, want 2", n)
	}
	if d.TrackedUsers() != 1 {
		t.Fatalf("tracked %d after eviction, want 1", d.TrackedUsers())
	}
	// The surviving user's history still drives the rules: an immediate
	// same-venue revisit is flagged...
	if v := d.Check(obsAt(3, 3, t0.Add(2*time.Hour+time.Minute), base)); v == nil {
		t.Fatal("survivor's history lost")
	}
	// ...while an evicted user starts fresh and passes.
	if v := d.Check(obsAt(1, 1, t0.Add(2*time.Hour+time.Minute), base)); v != nil {
		t.Fatalf("evicted user still has history: %v", v)
	}
	// Idempotent on an already-clean map.
	if n := d.EvictIdle(t0.Add(-time.Hour)); n != 0 {
		t.Fatalf("evicted %d from a fresh cutoff, want 0", n)
	}
}

func TestConcurrentUsers(t *testing.T) {
	d := NewDetector(DefaultConfig())
	t0 := simclock.Epoch()
	done := make(chan struct{})
	for u := uint64(1); u <= 8; u++ {
		go func(user uint64) {
			defer func() { done <- struct{}{} }()
			base := geo.Point{Lat: 35 + float64(user)*0.1, Lon: -106}
			for i := 0; i < 50; i++ {
				p := base.Destination(0, float64(i)*800)
				_ = d.Check(obsAt(user, uint64(i), t0.Add(time.Duration(i)*10*time.Minute), p))
			}
		}(u)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	checked, _ := d.Stats()
	if checked != 8*50 {
		t.Errorf("checked = %d, want %d", checked, 8*50)
	}
}
