// Package cheatercode implements the server-side anti-cheating rule
// engine the paper reverse-engineered from Foursquare (§2.3). The
// details of the real cheater code were concealed; the paper detected
// three rules through black-box experiments, and this package
// reproduces exactly those observable behaviours:
//
//   - Frequent check-ins: a user cannot check in to the same venue
//     again within one hour.
//   - Super-human speed: consecutive check-ins far apart in space and
//     close in time imply an impossible travel speed and earn no
//     rewards.
//   - Rapid-fire check-ins: the 4th check-in within a 180 m × 180 m
//     square with ≤ 1-minute intervals triggers a warning.
//
// Per §4.3, detected check-ins still count toward a user's total
// check-in number but yield no rewards; that policy lives in the lbsn
// package, which consults this detector on every check-in.
package cheatercode

import (
	"fmt"
	"sync"
	"time"

	"locheat/internal/geo"
)

// Observation is one check-in attempt as the server sees it.
type Observation struct {
	UserID  uint64
	VenueID uint64
	At      time.Time
	// Location is the venue location being claimed (after GPS
	// verification, the claimed venue and the reported GPS coincide, so
	// the rules operate on venue coordinates).
	Location geo.Point
}

// RuleName identifies which rule flagged a check-in.
type RuleName string

// The three rules the paper identified.
const (
	RuleFrequentCheckin RuleName = "frequent-checkin"
	RuleSuperhumanSpeed RuleName = "superhuman-speed"
	RuleRapidFire       RuleName = "rapid-fire"
)

// Violation describes why a check-in was denied rewards.
type Violation struct {
	Rule   RuleName
	Detail string
}

// Error renders the violation; Violation implements error so the lbsn
// service can surface it in check-in results.
func (v *Violation) Error() string {
	return fmt.Sprintf("cheater code: %s: %s", v.Rule, v.Detail)
}

// Rule checks one observation against a user's history. Implementations
// must be safe for concurrent use across users; the Detector serializes
// calls per user.
type Rule interface {
	// Name returns the rule's identifier.
	Name() RuleName
	// Check inspects the observation given the user's prior accepted
	// history (most recent last) and returns a violation, or nil.
	Check(history []Observation, obs Observation) *Violation
}

// Config holds the rule thresholds. The defaults reproduce the
// boundaries measured in the paper.
type Config struct {
	// SameVenueCooldown is the minimum time between two check-ins of
	// the same user at the same venue (paper: one hour).
	SameVenueCooldown time.Duration
	// MaxSpeedMetersPerSecond is the travel-speed limit between
	// consecutive check-ins. The paper's operating point — "we can
	// check into venues less than 1 mile apart with a 5-minute interval
	// without being detected" — implies the limit is at or above
	// 1 mile / 5 min ≈ 5.4 m/s; we place the default at 15 m/s
	// (~33 mph, highway driving), which both admits the paper's
	// schedule and rejects its cross-country teleports.
	MaxSpeedMetersPerSecond float64
	// RapidFireSquareMeters is the side of the square area within which
	// rapid sequences are suspicious (paper: 180 m).
	RapidFireSquareMeters float64
	// RapidFireInterval is the per-step interval that makes a sequence
	// "rapid" (paper: 1 minute).
	RapidFireInterval time.Duration
	// RapidFireCount is the check-in ordinal that triggers the warning
	// (paper: the 4th check-in).
	RapidFireCount int
	// HistoryLimit bounds the per-user history retained; rules only
	// need the recent tail. Zero means the default of 64.
	HistoryLimit int
}

// DefaultConfig returns the thresholds measured in §2.3/§3.3.
func DefaultConfig() Config {
	return Config{
		SameVenueCooldown:       time.Hour,
		MaxSpeedMetersPerSecond: 15,
		RapidFireSquareMeters:   180,
		RapidFireInterval:       time.Minute,
		RapidFireCount:          4,
		HistoryLimit:            64,
	}
}

// Detector evaluates observations against the rule set, maintaining
// per-user history of accepted check-ins. It is safe for concurrent
// use.
type Detector struct {
	mu      sync.Mutex
	rules   []Rule
	history map[uint64][]Observation
	limit   int

	flagged map[RuleName]int
	checked int
}

// NewDetector builds a detector with the standard three rules at the
// given thresholds.
func NewDetector(cfg Config) *Detector {
	if cfg.HistoryLimit <= 0 {
		cfg.HistoryLimit = 64
	}
	return NewDetectorWithRules(cfg.HistoryLimit,
		FrequentCheckinRule{Cooldown: cfg.SameVenueCooldown},
		SuperhumanSpeedRule{MaxSpeed: cfg.MaxSpeedMetersPerSecond},
		RapidFireRule{
			SquareMeters: cfg.RapidFireSquareMeters,
			Interval:     cfg.RapidFireInterval,
			Count:        cfg.RapidFireCount,
		},
	)
}

// NewDetectorWithRules builds a detector from an explicit rule list;
// used by tests and by the ablation benchmarks that vary a single
// rule.
func NewDetectorWithRules(historyLimit int, rules ...Rule) *Detector {
	if historyLimit <= 0 {
		historyLimit = 64
	}
	return &Detector{
		rules:   rules,
		history: make(map[uint64][]Observation),
		limit:   historyLimit,
		flagged: make(map[RuleName]int),
	}
}

// Check evaluates obs. On a violation the observation is NOT added to
// history (a denied check-in establishes no location fact); otherwise
// it is recorded as the user's latest accepted sighting.
func (d *Detector) Check(obs Observation) *Violation {
	d.mu.Lock()
	defer d.mu.Unlock()

	d.checked++
	hist := d.history[obs.UserID]
	for _, r := range d.rules {
		if v := r.Check(hist, obs); v != nil {
			d.flagged[v.Rule]++
			return v
		}
	}
	hist = append(hist, obs)
	if len(hist) > d.limit {
		hist = hist[len(hist)-d.limit:]
	}
	d.history[obs.UserID] = hist
	return nil
}

// Stats reports how many observations were checked and how many each
// rule flagged.
func (d *Detector) Stats() (checked int, flagged map[RuleName]int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[RuleName]int, len(d.flagged))
	for k, v := range d.flagged {
		out[k] = v
	}
	return d.checked, out
}

// Reset clears all user histories, keeping counters. Used between
// experiment repetitions.
func (d *Detector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.history = make(map[uint64][]Observation)
}

// EvictIdle drops the history of every user whose latest accepted
// check-in predates olderThan and returns how many users were evicted.
// The rules only compare against recent history, so an idle user's
// record can never influence a verdict again; without eviction the
// history map grows with the lifetime user set.
func (d *Detector) EvictIdle(olderThan time.Time) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for u, hist := range d.history {
		if len(hist) == 0 || hist[len(hist)-1].At.Before(olderThan) {
			delete(d.history, u)
			n++
		}
	}
	return n
}

// ExportUsers removes and returns the accepted-check-in history of
// every user for whom leaving reports true. This is the detector's half
// of a cluster shard handoff: the history migrates to the user's new
// owner so the rules keep their comparison baseline across the move.
func (d *Detector) ExportUsers(leaving func(user uint64) bool) map[uint64][]Observation {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[uint64][]Observation)
	for u, hist := range d.history {
		if !leaving(u) {
			continue
		}
		if len(hist) > 0 {
			out[u] = hist
		}
		delete(d.history, u)
	}
	return out
}

// ImportUser installs history exported by another detector. Existing
// local history wins — it postdates the export.
func (d *Detector) ImportUser(user uint64, hist []Observation) {
	if len(hist) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.history[user]) > 0 {
		return
	}
	if len(hist) > d.limit {
		hist = hist[len(hist)-d.limit:]
	}
	d.history[user] = hist
}

// TrackedUsers reports how many users currently have retained history
// — the quantity EvictIdle bounds.
func (d *Detector) TrackedUsers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.history)
}

// FrequentCheckinRule denies a second check-in at the same venue
// within the cooldown.
type FrequentCheckinRule struct {
	Cooldown time.Duration
}

var _ Rule = FrequentCheckinRule{}

// Name implements Rule.
func (FrequentCheckinRule) Name() RuleName { return RuleFrequentCheckin }

// Check implements Rule.
func (r FrequentCheckinRule) Check(history []Observation, obs Observation) *Violation {
	for i := len(history) - 1; i >= 0; i-- {
		prev := history[i]
		if obs.At.Sub(prev.At) >= r.Cooldown {
			break // history is chronological; older entries are even further back
		}
		if prev.VenueID == obs.VenueID {
			return &Violation{
				Rule: RuleFrequentCheckin,
				Detail: fmt.Sprintf("venue %d revisited after %s, cooldown %s",
					obs.VenueID, obs.At.Sub(prev.At), r.Cooldown),
			}
		}
	}
	return nil
}

// SuperhumanSpeedRule denies check-ins implying impossible travel speed
// from the previous accepted check-in.
type SuperhumanSpeedRule struct {
	MaxSpeed float64 // meters per second
}

var _ Rule = SuperhumanSpeedRule{}

// Name implements Rule.
func (SuperhumanSpeedRule) Name() RuleName { return RuleSuperhumanSpeed }

// Check implements Rule.
func (r SuperhumanSpeedRule) Check(history []Observation, obs Observation) *Violation {
	if len(history) == 0 {
		return nil
	}
	prev := history[len(history)-1]
	dist := prev.Location.DistanceMeters(obs.Location)
	elapsed := obs.At.Sub(prev.At).Seconds()
	speed := geo.SpeedMetersPerSecond(dist, elapsed)
	if speed > r.MaxSpeed {
		return &Violation{
			Rule: RuleSuperhumanSpeed,
			Detail: fmt.Sprintf("%.0f m in %.0f s = %.1f m/s exceeds %.1f m/s",
				dist, elapsed, speed, r.MaxSpeed),
		}
	}
	return nil
}

// RapidFireRule issues the paper's "rapid-fire check-ins" warning: the
// Count-th check-in within a SquareMeters × SquareMeters area with
// every inter-check-in gap at most Interval is denied.
type RapidFireRule struct {
	SquareMeters float64
	Interval     time.Duration
	Count        int
}

var _ Rule = RapidFireRule{}

// Name implements Rule.
func (RapidFireRule) Name() RuleName { return RuleRapidFire }

// Check implements Rule.
func (r RapidFireRule) Check(history []Observation, obs Observation) *Violation {
	if r.Count <= 1 {
		return nil
	}
	// Walk backwards collecting the run of check-ins each within
	// Interval of the next; the current observation would be run+1.
	run := []Observation{obs}
	last := obs
	for i := len(history) - 1; i >= 0; i-- {
		prev := history[i]
		if last.At.Sub(prev.At) > r.Interval {
			break
		}
		run = append(run, prev)
		last = prev
	}
	if len(run) < r.Count {
		return nil
	}
	// The most recent Count check-ins of the run must fit in the square.
	window := run[:r.Count]
	pts := make([]geo.Point, len(window))
	for i, o := range window {
		pts[i] = o.Location
	}
	rect, _ := geo.BoundingRect(pts)
	side := r.SquareMeters
	height := geo.Point{Lat: rect.MinLat, Lon: rect.MinLon}.
		DistanceMeters(geo.Point{Lat: rect.MaxLat, Lon: rect.MinLon})
	width := geo.Point{Lat: rect.MinLat, Lon: rect.MinLon}.
		DistanceMeters(geo.Point{Lat: rect.MinLat, Lon: rect.MaxLon})
	if height <= side && width <= side {
		return &Violation{
			Rule: RuleRapidFire,
			Detail: fmt.Sprintf("%d check-ins within %.0fx%.0f m at <= %s intervals",
				r.Count, width, height, r.Interval),
		}
	}
	return nil
}
