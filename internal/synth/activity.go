package synth

import (
	"fmt"
	"math/rand"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

// CheckinFunc delivers one generated check-in somewhere: the in-process
// service (the default), or an HTTP client posting against a live
// cluster (the load harness). It reports whether the claim was
// accepted.
type CheckinFunc func(user lbsn.UserID, venue lbsn.VenueID, at geo.Point) (accepted bool, err error)

// ActivityDriver replays ongoing daily activity for a sample of the
// world's users through the LIVE service pipeline, so that repeated
// crawls see the site change — the prerequisite for the §3.2
// differential-crawling analysis. Normal users visit venues around
// home at a human cadence; uncaught cheaters run paced spoofed
// itineraries across cities (which is why they stay uncaught); caught
// cheaters fire recklessly and get their check-ins invalidated.
//
// The driver is clock-agnostic: it paces itself through a
// simclock.Sleeper, so the same behavioural models run as day-batch
// simulation (simclock.Simulated — Sleep advances instantly) and as
// wall-clock load against a live daemon (simclock.RealSleeper or a
// compressed simclock.ScaledSleeper).
type ActivityDriver struct {
	world   *World
	sink    CheckinFunc
	sleeper simclock.Sleeper
	rng     *rand.Rand

	// sampled user indexes by behaviour bucket.
	actives  []int
	cheaters []int
	caught   []int

	byCity [][]int // venue indexes per city
}

// DayStats summarizes one simulated day of activity.
type DayStats struct {
	Attempted int
	Accepted  int
	Denied    int
}

// NewActivityDriver samples up to sampleActives normal users plus all
// cheaters, preparing them to generate daily traffic against svc. The
// service must already hold the world (LoadInto) and share the
// sleeper's clock.
func NewActivityDriver(w *World, svc *lbsn.Service, sleeper simclock.Sleeper, seed int64, sampleActives int) (*ActivityDriver, error) {
	if svc.UserCount() < len(w.Users) {
		return nil, fmt.Errorf("activity driver: service has %d users, world has %d (LoadInto first)",
			svc.UserCount(), len(w.Users))
	}
	sink := func(user lbsn.UserID, venue lbsn.VenueID, at geo.Point) (bool, error) {
		res, err := svc.CheckIn(lbsn.CheckinRequest{UserID: user, VenueID: venue, Reported: at})
		return res.Accepted, err
	}
	return NewActivityDriverFunc(w, sink, sleeper, seed, sampleActives)
}

// NewActivityDriverFunc is NewActivityDriver with a pluggable check-in
// sink instead of an in-process service — the live-replay entry point:
// the same sampled users and schedules, delivered wherever sink posts.
func NewActivityDriverFunc(w *World, sink CheckinFunc, sleeper simclock.Sleeper, seed int64, sampleActives int) (*ActivityDriver, error) {
	if sink == nil {
		return nil, fmt.Errorf("activity driver: nil check-in sink")
	}
	d := &ActivityDriver{
		world:   w,
		sink:    sink,
		sleeper: sleeper,
		rng:     rand.New(rand.NewSource(seed)),
	}
	d.byCity = make([][]int, len(w.Cities))
	for i, v := range w.Venues {
		d.byCity[v.City] = append(d.byCity[v.City], i)
	}
	for i := range w.Users {
		switch w.Users[i].Class {
		case ClassActive, ClassPower:
			if len(d.actives) < sampleActives {
				d.actives = append(d.actives, i)
			}
		case ClassCheater, ClassSuperMayor:
			d.cheaters = append(d.cheaters, i)
		case ClassCaught:
			d.caught = append(d.caught, i)
		}
	}
	if len(d.actives) == 0 {
		return nil, fmt.Errorf("activity driver: no active users to sample")
	}
	return d, nil
}

// Day generates 24 hours of activity and leaves the sleeper's clock one
// day later than it started (under a simulated clock that is an instant
// batch; under a real or scaled sleeper the calls actually pace out).
func (d *ActivityDriver) Day() (DayStats, error) {
	var stats DayStats
	dayStart := d.sleeper.Now()

	// Normal users: 1–3 venues near home, tens of minutes apart.
	for _, ui := range d.actives {
		visits := 1 + d.rng.Intn(3)
		for n := 0; n < visits; n++ {
			v := d.pickVenue(d.world.Users[ui].HomeCity)
			if v < 0 {
				continue
			}
			d.sleeper.Sleep(time.Duration(20+d.rng.Intn(90)) * time.Minute)
			if err := d.checkin(ui, v, &stats); err != nil {
				return stats, err
			}
		}
	}
	// Uncaught cheaters: the §3.3 objective is to "check into as many
	// businesses as possible and as frequently as possible". They run
	// a paced 10–16-stop tour split across two cities per day — dense
	// local hops at the 5-minute floor, one big inter-city jump whose
	// wait honours the speed envelope.
	for _, ui := range d.cheaters {
		stops := 10 + d.rng.Intn(7)
		cities := []int{d.rng.Intn(len(d.world.Cities)), d.rng.Intn(len(d.world.Cities))}
		var prev geo.Point
		havePrev := false
		for n := 0; n < stops; n++ {
			city := cities[0]
			if n >= stops/2 {
				city = cities[1]
			}
			v := d.pickVenue(city)
			if v < 0 {
				continue
			}
			loc := d.world.Venues[v].Seed.Location
			wait := 5 * time.Minute
			if havePrev {
				if miles := prev.DistanceMiles(loc); miles > 1 {
					wait = time.Duration(miles * float64(5*time.Minute))
				}
			}
			d.sleeper.Sleep(wait)
			if err := d.checkin(ui, v, &stats); err != nil {
				return stats, err
			}
			prev, havePrev = loc, true
		}
	}
	// Caught cheaters: a reckless burst that the cheater code eats.
	for _, ui := range d.caught {
		for n := 0; n < 6; n++ {
			city := d.rng.Intn(len(d.world.Cities))
			v := d.pickVenue(city)
			if v < 0 {
				continue
			}
			d.sleeper.Sleep(time.Duration(1+d.rng.Intn(3)) * time.Minute)
			if err := d.checkin(ui, v, &stats); err != nil {
				return stats, err
			}
		}
	}

	// Close out the day: sleep whatever remains of the 24 hours. (The
	// simulated clock's AdvanceTo is exactly this; phrasing it as a
	// relative sleep is what lets a wall-clock sleeper drive the same
	// schedule.)
	if rest := 24*time.Hour - d.sleeper.Now().Sub(dayStart); rest > 0 {
		d.sleeper.Sleep(rest)
	}
	return stats, nil
}

func (d *ActivityDriver) pickVenue(city int) int {
	list := d.byCity[city]
	if len(list) == 0 {
		return -1
	}
	return list[d.rng.Intn(len(list))]
}

func (d *ActivityDriver) checkin(userIdx, venueIdx int, stats *DayStats) error {
	accepted, err := d.sink(lbsn.UserID(userIdx+1), lbsn.VenueID(venueIdx+1),
		d.world.Venues[venueIdx].Seed.Location)
	if err != nil {
		return fmt.Errorf("activity check-in user %d venue %d: %w", userIdx+1, venueIdx+1, err)
	}
	stats.Attempted++
	if accepted {
		stats.Accepted++
	} else {
		stats.Denied++
	}
	return nil
}
