package synth

import (
	"math"
	"testing"

	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
)

// smallWorld generates a modest world once per test binary run.
func smallWorld(t *testing.T) *World {
	t.Helper()
	return Generate(Config{Seed: 1, Users: 5000, Venues: 15000})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, Users: 500, Venues: 1500})
	b := Generate(Config{Seed: 7, Users: 500, Venues: 1500})
	if len(a.Users) != len(b.Users) {
		t.Fatal("sizes differ")
	}
	for i := range a.Users {
		if a.Users[i].Seed != b.Users[i].Seed || a.Users[i].Class != b.Users[i].Class {
			t.Fatalf("user %d differs between identically seeded worlds", i)
		}
	}
	c := Generate(Config{Seed: 8, Users: 500, Venues: 1500})
	same := true
	for i := range a.Users {
		if a.Users[i].Seed != c.Users[i].Seed {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical users")
	}
}

func TestMarginalsMatchPaper(t *testing.T) {
	w := smallWorld(t)
	zero, casual, heavy := 0, 0, 0
	for _, u := range w.Users {
		switch {
		case u.Seed.TotalCheckins == 0:
			zero++
		case u.Seed.TotalCheckins <= 5:
			casual++
		}
		if u.Seed.TotalCheckins >= 1000 {
			heavy++
		}
	}
	n := float64(len(w.Users))
	if f := float64(zero) / n; math.Abs(f-0.363) > 0.03 {
		t.Errorf("zero-check-in fraction = %.3f, want ~0.363", f)
	}
	if f := float64(casual) / n; math.Abs(f-0.204) > 0.03 {
		t.Errorf("casual fraction = %.3f, want ~0.204", f)
	}
	// Heavy: 0.2% sampled + 12 forced.
	if f := float64(heavy) / n; f < 0.001 || f > 0.008 {
		t.Errorf("heavy fraction = %.4f, want around 0.002-0.005", f)
	}
}

func TestForcedTopUsers(t *testing.T) {
	w := smallWorld(t)
	counts := w.CountByClass()
	if counts[ClassSuperMayor] != 1 {
		t.Fatalf("super mayors = %d, want 1", counts[ClassSuperMayor])
	}
	// Exactly 11 users with >= 5000 total check-ins, 6 power + 5 caught.
	var fiveK, power5k, caught5k, over12k int
	for _, u := range w.Users {
		if u.Seed.TotalCheckins >= 5000 {
			fiveK++
			switch u.Class {
			case ClassPower:
				power5k++
			case ClassCaught:
				caught5k++
			}
			if u.Seed.TotalCheckins >= 12000 {
				over12k++
			}
		}
	}
	if fiveK != 11 {
		t.Errorf("users >= 5000 check-ins = %d, want exactly 11 (§4.2)", fiveK)
	}
	if power5k != 6 || caught5k != 5 {
		t.Errorf("5000+ split = %d power / %d caught, want 6/5", power5k, caught5k)
	}
	if over12k != 1 {
		t.Errorf("users over 12000 = %d, want 1 (the top user)", over12k)
	}
}

func TestSuperMayorProfile(t *testing.T) {
	w := smallWorld(t)
	var sm *UserRecord
	for i := range w.Users {
		if w.Users[i].Class == ClassSuperMayor {
			sm = &w.Users[i]
			break
		}
	}
	if sm == nil {
		t.Fatal("no super mayor")
	}
	if sm.Seed.TotalCheckins != 1265 {
		t.Errorf("super mayor total = %d, want 1265", sm.Seed.TotalCheckins)
	}
	if sm.Mayorships != 865 {
		t.Errorf("super mayor mayorships = %d, want 865", sm.Mayorships)
	}
	// Most of his venues must have no other visitors.
	solo := 0
	id := lbsn.UserID(sm.Index + 1)
	for _, v := range w.Venues {
		if v.Seed.MayorID == id && len(v.Seed.RecentVisitors) == 1 && v.Seed.RecentVisitors[0] == id {
			solo++
		}
	}
	if solo < 800 {
		t.Errorf("solo-visitor mayored venues = %d, want >= 800 of 865", solo)
	}
}

func TestCaughtCheatersHaveNoMayorshipsFewBadges(t *testing.T) {
	w := smallWorld(t)
	for _, u := range w.Users {
		if u.Class != ClassCaught {
			continue
		}
		if u.Mayorships != 0 {
			t.Errorf("caught cheater %d holds %d mayorships, want 0", u.Index, u.Mayorships)
		}
		if u.Seed.BadgeCount >= 10 {
			t.Errorf("caught cheater %d has %d badges, want < 10", u.Index, u.Seed.BadgeCount)
		}
		if len(u.RecentVenues) > 4 {
			t.Errorf("caught cheater %d on %d recent lists, want <= 4", u.Index, len(u.RecentVenues))
		}
	}
}

func TestCheaterGeographicSpread(t *testing.T) {
	w := smallWorld(t)
	cheaters, normals := 0, 0
	for _, u := range w.Users {
		cities := make(map[int]struct{})
		for _, v := range u.RecentVenues {
			cities[w.Venues[v].City] = struct{}{}
		}
		switch u.Class {
		case ClassCheater:
			cheaters++
			if len(cities) < 15 {
				t.Errorf("uncaught cheater %d spans %d cities, want >= 15", u.Index, len(cities))
			}
		case ClassActive:
			if len(u.RecentVenues) >= 10 {
				normals++
				if len(cities) > 5 {
					t.Errorf("active user %d spans %d cities, want <= 5", u.Index, len(cities))
				}
			}
		}
	}
	if cheaters == 0 {
		t.Error("world has no uncaught cheaters")
	}
	if normals == 0 {
		t.Error("world has no active users with enough data to check")
	}
}

func TestMayoredVenueFractionAndConcentration(t *testing.T) {
	w := smallWorld(t)
	mayored := 0
	mayors := make(map[lbsn.UserID]int)
	for _, v := range w.Venues {
		if v.Seed.MayorID != 0 {
			mayored++
			mayors[v.Seed.MayorID]++
		}
	}
	frac := float64(mayored) / float64(len(w.Venues))
	if frac < 0.30 || frac > 0.52 {
		t.Errorf("mayored venue fraction = %.3f, want ~0.41", frac)
	}
	avg := float64(mayored) / float64(len(mayors))
	if avg < 2 {
		t.Errorf("avg mayorships per mayor = %.2f, want concentration > 2 (paper: 5.45)", avg)
	}
}

func TestSpecialsMostlyMayorOnlyPlusOrphans(t *testing.T) {
	w := smallWorld(t)
	specials, mayorOnly, orphans := 0, 0, 0
	for _, v := range w.Venues {
		if v.Seed.Special == nil {
			continue
		}
		specials++
		if v.Seed.Special.MayorOnly {
			mayorOnly++
		}
		if v.Seed.MayorID == 0 && v.Seed.Special.MayorOnly {
			orphans++
		}
	}
	if specials == 0 {
		t.Fatal("no specials generated")
	}
	if f := float64(mayorOnly) / float64(specials); f < 0.85 {
		t.Errorf("mayor-only special fraction = %.2f, want > 0.9-ish (§2.1: >90%%)", f)
	}
	if orphans < w.Cfg.OrphanSpecialCount {
		t.Errorf("orphan specials = %d, want >= %d (E6 targets)", orphans, w.Cfg.OrphanSpecialCount)
	}
}

func TestRecentListsRespectCap(t *testing.T) {
	w := smallWorld(t)
	for _, v := range w.Venues {
		if len(v.Seed.RecentVisitors) > w.Cfg.RecentListCap && len(v.Seed.RecentVisitors) != 1 {
			t.Fatalf("venue %d recent list has %d entries, cap %d",
				v.Index, len(v.Seed.RecentVisitors), w.Cfg.RecentListCap)
		}
	}
}

func TestChainVenuesSpanManyCities(t *testing.T) {
	w := smallWorld(t)
	cities := make(map[int]struct{})
	count := 0
	for _, v := range w.Venues {
		if v.Chain == "Starbucks" {
			count++
			cities[v.City] = struct{}{}
		}
	}
	if count < 100 {
		t.Fatalf("only %d Starbucks venues", count)
	}
	if len(cities) < 40 {
		t.Errorf("Starbucks spans %d cities, want >= 40 (Fig 3.4 US shape)", len(cities))
	}
}

func TestVenueCountersConsistent(t *testing.T) {
	w := smallWorld(t)
	for _, v := range w.Venues {
		if v.Seed.UniqueVisitors < len(v.Seed.RecentVisitors) {
			t.Fatalf("venue %d: unique %d < recent list %d",
				v.Index, v.Seed.UniqueVisitors, len(v.Seed.RecentVisitors))
		}
		if v.Seed.CheckinsHere < v.Seed.UniqueVisitors {
			t.Fatalf("venue %d: checkins %d < unique %d",
				v.Index, v.Seed.CheckinsHere, v.Seed.UniqueVisitors)
		}
	}
}

func TestLoadIntoService(t *testing.T) {
	w := Generate(Config{Seed: 3, Users: 300, Venues: 900})
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	if err := w.LoadInto(svc); err != nil {
		t.Fatal(err)
	}
	if svc.UserCount() != 300 || svc.VenueCount() != 900 {
		t.Fatalf("service = %d users / %d venues", svc.UserCount(), svc.VenueCount())
	}
	// Index<->ID correspondence.
	uv, ok := svc.User(lbsn.UserID(42))
	if !ok || uv.Name != w.Users[41].Seed.Name {
		t.Errorf("user 42 = %+v, want %q", uv, w.Users[41].Seed.Name)
	}
	// Loading twice fails.
	if err := w.LoadInto(svc); err == nil {
		t.Error("LoadInto on a non-empty service should fail")
	}
}

func TestFillStoreMatchesWorld(t *testing.T) {
	w := Generate(Config{Seed: 3, Users: 300, Venues: 900})
	db := store.New()
	w.FillStore(db)
	users, venues, recents := db.Counts()
	if users != 300 || venues != 900 {
		t.Fatalf("store = %d users / %d venues", users, venues)
	}
	wantRecents := 0
	for _, v := range w.Venues {
		wantRecents += len(v.Seed.RecentVisitors)
	}
	if recents != wantRecents {
		t.Errorf("recent relations = %d, want %d", recents, wantRecents)
	}
	// Derived mayor counts match ground truth.
	for i, u := range w.Users {
		row, _ := db.User(uint64(i + 1))
		if row.TotalMayors != u.Mayorships {
			t.Fatalf("user %d derived mayors = %d, ground truth %d", i+1, row.TotalMayors, u.Mayorships)
		}
		if row.RecentCheckins != len(u.RecentVenues) {
			t.Fatalf("user %d derived recents = %d, ground truth %d", i+1, row.RecentCheckins, len(u.RecentVenues))
		}
	}
}

func TestTrueClass(t *testing.T) {
	w := Generate(Config{Seed: 3, Users: 300, Venues: 900})
	if _, ok := w.TrueClass(0); ok {
		t.Error("ID 0 should not resolve")
	}
	if _, ok := w.TrueClass(301); ok {
		t.Error("out-of-range ID should not resolve")
	}
	c, ok := w.TrueClass(1)
	if !ok || c == 0 {
		t.Error("ID 1 should resolve to a class")
	}
}

func TestClassStrings(t *testing.T) {
	for _, c := range []Class{ClassInactive, ClassCasual, ClassActive, ClassPower, ClassCheater, ClassCaught, ClassSuperMayor} {
		if c.String() == "" {
			t.Errorf("class %d has empty string", c)
		}
	}
	if Class(99).String() == "" {
		t.Error("unknown class string empty")
	}
	if !ClassCheater.Cheating() || !ClassCaught.Cheating() || !ClassSuperMayor.Cheating() {
		t.Error("cheater classes must report Cheating")
	}
	if ClassActive.Cheating() || ClassPower.Cheating() {
		t.Error("legit classes must not report Cheating")
	}
}

func TestSmallWorldWithoutForcedUsers(t *testing.T) {
	w := Generate(Config{Seed: 5, Users: 50, Venues: 150})
	for _, u := range w.Users {
		if u.Class == ClassSuperMayor {
			t.Error("tiny world should skip forced users")
		}
	}
}
