package synth

import (
	"testing"

	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

func driverWorld(t *testing.T) (*World, *lbsn.Service, *simclock.Simulated) {
	t.Helper()
	w := Generate(Config{Seed: 23, Users: 800, Venues: 2400})
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	if err := w.LoadInto(svc); err != nil {
		t.Fatal(err)
	}
	return w, svc, clock
}

func TestActivityDriverDay(t *testing.T) {
	w, svc, clock := driverWorld(t)
	d, err := NewActivityDriver(w, svc, clock, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	stats, err := d.Day()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempted == 0 || stats.Accepted == 0 {
		t.Fatalf("stats = %+v, want traffic", stats)
	}
	if got := clock.Now().Sub(before); got < 24*3600*1e9 {
		t.Errorf("clock advanced %v, want >= 24h", got)
	}
	// Service counters moved.
	total, _, _ := svc.Stats()
	if total != stats.Attempted {
		t.Errorf("service saw %d check-ins, driver attempted %d", total, stats.Attempted)
	}
}

func TestActivityDriverCheaterClassesBehave(t *testing.T) {
	w, svc, clock := driverWorld(t)
	d, err := NewActivityDriver(w, svc, clock, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Run several days and accumulate per-class outcomes.
	for day := 0; day < 3; day++ {
		if _, err := d.Day(); err != nil {
			t.Fatal(err)
		}
	}
	// Uncaught cheaters keep earning; caught cheaters' totals grow but
	// valid counts stall.
	for _, ui := range d.caught {
		uv, _ := svc.User(lbsn.UserID(ui + 1))
		seed := w.Users[ui].Seed
		grewTotal := uv.TotalCheckins > seed.TotalCheckins
		if !grewTotal {
			t.Errorf("caught cheater %d total did not grow", ui+1)
		}
	}
	for _, ui := range d.cheaters {
		uv, _ := svc.User(lbsn.UserID(ui + 1))
		if uv.TotalCheckins <= w.Users[ui].Seed.TotalCheckins {
			t.Errorf("uncaught cheater %d produced no traffic", ui+1)
		}
	}
}

func TestActivityDriverDenialPattern(t *testing.T) {
	w, svc, clock := driverWorld(t)
	d, err := NewActivityDriver(w, svc, clock, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.Day()
	if err != nil {
		t.Fatal(err)
	}
	// Reckless caught-cheater bursts should produce SOME denials while
	// the overall day is mostly accepted (normals + paced cheaters).
	if stats.Denied == 0 {
		t.Error("no denials despite reckless caught-cheater traffic")
	}
	if stats.Accepted <= stats.Denied {
		t.Errorf("accepted %d <= denied %d; pacing broken", stats.Accepted, stats.Denied)
	}
}

func TestActivityDriverRequiresLoadedService(t *testing.T) {
	w := Generate(Config{Seed: 4, Users: 300, Venues: 900})
	clock := simclock.NewSimulated(simclock.Epoch())
	empty := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	if _, err := NewActivityDriver(w, empty, clock, 1, 10); err == nil {
		t.Error("driver accepted an unloaded service")
	}
}
