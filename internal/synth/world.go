// Package synth generates the synthetic LBSN world that stands in for
// the August 2010 Foursquare population the paper crawled (the live
// service is closed and has changed beyond recognition — see
// DESIGN.md's substitution table). The generator is calibrated to the
// marginals §4 reports:
//
//   - 36.3% of users have zero check-ins, 20.4% have 1–5, 0.2% have
//     ≥ 1000, and (at any scale) exactly 11 forced users have ≥ 5000,
//     split 6/5 into a mayor-rich city-bound group and a caught-cheater
//     group with no mayorships and few badges;
//   - a forced "super mayor" holds 865 mayorships on 1265 total
//     check-ins, mayor of venues nobody else visits (§3.4);
//   - ~41% of venues have mayors (2,315,747 of 5.6 M) and mayorships
//     concentrate so the average mayor holds several venues (5.45 in
//     the paper);
//   - >90% of specials are mayor-only (§2.1), and a small set of
//     venues has a special but no mayor — the E6 attack targets;
//   - chain venues (Starbucks, …) are spread across cities by metro
//     population, so the Fig 3.4 scatter traces the US territory;
//   - normal users' check-ins concentrate in ≤ 3 cities (Fig 4.4)
//     while uncaught cheaters spread over ≥ 30 (Fig 4.3), with
//     recent-visitor-list presence and badge counts following the
//     Fig 4.1 / Fig 4.2 class models.
//
// Everything is driven by a seeded math/rand source, so worlds are
// reproducible.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/store"
)

// Class is the ground-truth behavioural label of a synthetic user.
// The analysis package tries to recover the cheater labels from
// crawl-visible data only.
type Class int

// User classes.
const (
	ClassInactive   Class = iota + 1 // zero check-ins
	ClassCasual                      // 1–5 check-ins
	ClassActive                      // ordinary active user
	ClassPower                       // legitimately heavy, city-bound (group A)
	ClassCheater                     // uncaught location cheater (spread out)
	ClassCaught                      // cheater caught by the cheater code (group B)
	ClassSuperMayor                  // the 865-mayorship user of §3.4
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassInactive:
		return "inactive"
	case ClassCasual:
		return "casual"
	case ClassActive:
		return "active"
	case ClassPower:
		return "power"
	case ClassCheater:
		return "cheater"
	case ClassCaught:
		return "caught-cheater"
	case ClassSuperMayor:
		return "super-mayor"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Cheating reports whether the class is a location cheater (caught or
// not).
func (c Class) Cheating() bool {
	return c == ClassCheater || c == ClassCaught || c == ClassSuperMayor
}

// Config sizes and shapes the world. Zero fields take defaults.
type Config struct {
	Seed   int64
	Users  int // default 20000
	Venues int // default 3×Users (paper ratio 5.6M venues / 1.89M users ≈ 3)

	RecentListCap int // venue recent-visitor list length (default 10)

	ZeroFraction   float64 // users with no check-ins (default 0.363)
	CasualFraction float64 // users with 1–5 (default 0.204)
	HeavyFraction  float64 // users with ≥ 1000 (default 0.002)

	MayoredVenueFraction float64 // venues with a mayor (default 0.41)
	SpecialFraction      float64 // venues with a special (default 0.02)
	MayorOnlyFraction    float64 // specials that are mayor-only (default 0.92)
	OrphanSpecialCount   int     // venues forced to special+no-mayor (default Venues/500)

	ChainFraction    float64 // venues in national chains (default 0.3)
	UsernameFraction float64 // users with a username (default 0.261)

	// DisableTopUsers skips injecting the 11 heavy users + super mayor
	// (they are injected by default for worlds of ≥ 100 users).
	DisableTopUsers bool
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 20000
	}
	if c.Venues <= 0 {
		c.Venues = 3 * c.Users
	}
	if c.RecentListCap <= 0 {
		c.RecentListCap = 10
	}
	if c.ZeroFraction <= 0 {
		c.ZeroFraction = 0.363
	}
	if c.CasualFraction <= 0 {
		c.CasualFraction = 0.204
	}
	if c.HeavyFraction <= 0 {
		c.HeavyFraction = 0.002
	}
	if c.MayoredVenueFraction <= 0 {
		c.MayoredVenueFraction = 0.41
	}
	if c.SpecialFraction <= 0 {
		c.SpecialFraction = 0.02
	}
	if c.MayorOnlyFraction <= 0 {
		c.MayorOnlyFraction = 0.92
	}
	if c.OrphanSpecialCount <= 0 {
		c.OrphanSpecialCount = c.Venues / 500
	}
	if c.ChainFraction <= 0 {
		c.ChainFraction = 0.3
	}
	if c.UsernameFraction <= 0 {
		c.UsernameFraction = 0.261
	}
	return c
}

// UserRecord is one synthetic user with ground truth attached.
type UserRecord struct {
	Index        int // 0-based; LoadInto/FillStore assign ID Index+1
	Seed         lbsn.UserSeed
	Class        Class
	HomeCity     int   // index into World.Cities
	RecentVenues []int // venue indexes whose recent list carries this user
	Mayorships   int   // ground-truth mayor count
}

// VenueRecord is one synthetic venue.
type VenueRecord struct {
	Index int
	Seed  lbsn.VenueSeed
	City  int
	Chain string // "" for independents
}

// World is a generated population.
type World struct {
	Cfg    Config
	Cities []geo.City
	Users  []UserRecord
	Venues []VenueRecord
}

// Generate builds a world from the config.
func Generate(cfg Config) *World {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Cfg: cfg, Cities: geo.USCities()}

	cityPicker := newWeightedPicker(w.Cities)

	w.generateVenues(rng, cityPicker)
	w.generateUsers(rng, cityPicker)
	if !cfg.DisableTopUsers && cfg.Users >= 100 {
		w.forceTopUsers(rng)
	}
	w.assignRecentLists(rng)
	w.assignMayors(rng)
	w.finalizeCounters(rng)
	return w
}

// weightedPicker samples city indexes proportionally to weight.
type weightedPicker struct {
	cum []float64
}

func newWeightedPicker(cities []geo.City) *weightedPicker {
	cum := make([]float64, len(cities))
	total := 0.0
	for i, c := range cities {
		total += c.Weight
		cum[i] = total
	}
	return &weightedPicker{cum: cum}
}

func (p *weightedPicker) pick(rng *rand.Rand) int {
	target := rng.Float64() * p.cum[len(p.cum)-1]
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// generateVenues places venues in cities with Gaussian street scatter.
func (w *World) generateVenues(rng *rand.Rand, cities *weightedPicker) {
	w.Venues = make([]VenueRecord, w.Cfg.Venues)
	chainCum := make([]float64, len(chains))
	total := 0.0
	for i, c := range chains {
		total += c.Weight
		chainCum[i] = total
	}
	chainCounters := make(map[string]int, len(chains))

	for i := range w.Venues {
		cityIdx := cities.pick(rng)
		city := w.Cities[cityIdx]
		// ~σ 3 km urban scatter.
		dLat := rng.NormFloat64() * 3000 / geo.MetersPerDegreeLat()
		dLon := rng.NormFloat64() * 3000 / geo.MetersPerDegreeLon(city.Center.Lat)
		loc := city.Center.Offset(dLat, dLon)

		rec := VenueRecord{Index: i, City: cityIdx}
		if rng.Float64() < w.Cfg.ChainFraction {
			t := rng.Float64() * total
			ci := 0
			for ci < len(chainCum) && chainCum[ci] < t {
				ci++
			}
			chainCounters[chains[ci].Name]++
			rec.Chain = chains[ci].Name
			rec.Seed.Name = fmt.Sprintf("%s #%d", chains[ci].Name, chainCounters[chains[ci].Name])
		} else {
			rec.Seed.Name = fmt.Sprintf("%s %s",
				venueAdjectives[rng.Intn(len(venueAdjectives))],
				venueKinds[rng.Intn(len(venueKinds))])
		}
		rec.Seed.Address = fmt.Sprintf("%d %s St", 1+rng.Intn(9999), lastNames[rng.Intn(len(lastNames))])
		rec.Seed.City = city.Name
		rec.Seed.Location = loc
		w.Venues[i] = rec
	}
}

// sampleTotalCheckins draws a user's total check-in count per the §4.2
// marginals.
func sampleTotalCheckins(rng *rand.Rand, cfg Config) (int, Class) {
	r := rng.Float64()
	switch {
	case r < cfg.ZeroFraction:
		return 0, ClassInactive
	case r < cfg.ZeroFraction+cfg.CasualFraction:
		return 1 + rng.Intn(5), ClassCasual
	case r < 1-cfg.HeavyFraction:
		// Body: log-normal-ish, 6..999.
		v := int(math.Exp(rng.NormFloat64()*1.1 + 3.2))
		if v < 6 {
			v = 6
		}
		if v > 999 {
			v = 999
		}
		return v, ClassActive
	default:
		// Heavy tail 1000..~4800; the ≥5000 stratum is forced
		// separately so the "11 users ≥ 5000" stat stays exact.
		v := 1000 + int(rng.ExpFloat64()*800)
		if v > 4800 {
			v = 4800
		}
		// 45% legitimately heavy, 30% uncaught cheaters, 25% caught.
		c := rng.Float64()
		switch {
		case c < 0.45:
			return v, ClassPower
		case c < 0.75:
			return v, ClassCheater
		default:
			return v, ClassCaught
		}
	}
}

// generateUsers fills the user slice with sampled classes and totals.
func (w *World) generateUsers(rng *rand.Rand, cities *weightedPicker) {
	launch := time.Date(2009, time.March, 1, 0, 0, 0, 0, time.UTC)
	snapshot := simclock.Epoch()
	span := snapshot.Sub(launch)

	w.Users = make([]UserRecord, w.Cfg.Users)
	for i := range w.Users {
		total, class := sampleTotalCheckins(rng, w.Cfg)
		u := UserRecord{Index: i, Class: class, HomeCity: cities.pick(rng)}
		u.Seed.Name = fmt.Sprintf("%s %s",
			firstNames[rng.Intn(len(firstNames))],
			lastNames[rng.Intn(len(lastNames))])
		if rng.Float64() < w.Cfg.UsernameFraction {
			u.Seed.Username = fmt.Sprintf("%s%d", firstNames[rng.Intn(len(firstNames))], i+1)
		}
		u.Seed.HomeCity = w.Cities[u.HomeCity].Name
		u.Seed.CreatedAt = launch.Add(time.Duration(rng.Float64() * float64(span)))
		u.Seed.TotalCheckins = total
		u.Seed.ValidCheckins = total
		u.Seed.FriendCount = int(rng.ExpFloat64() * 8)
		w.Users[i] = u
	}
	// Badges and points from the class models.
	for i := range w.Users {
		u := &w.Users[i]
		u.Seed.BadgeCount = badgeModel(rng, u.Class, u.Seed.TotalCheckins)
		u.Seed.Points = pointsModel(rng, u.Class, u.Seed.TotalCheckins)
		if u.Class == ClassCaught {
			// Invalidated check-ins earn nothing; a caught cheater's
			// valid count is a small fraction of the total.
			u.Seed.ValidCheckins = int(float64(u.Seed.TotalCheckins) * 0.05)
		}
	}
}

// badgeModel reproduces the Fig 4.2 reward-rate signature: a stable
// concave badge curve for legitimate users and uncaught cheaters (who
// still receive rewards), near-zero for caught cheaters whose check-ins
// were invalidated.
func badgeModel(rng *rand.Rand, class Class, total int) int {
	switch class {
	case ClassInactive:
		return 0
	case ClassCasual:
		n := rng.Intn(3)
		if n > total {
			n = total
		}
		return n
	case ClassCaught:
		return rng.Intn(10) // "many users with more than 1000 check-ins only have less than 10 badges"
	default:
		b := 2.2 * math.Sqrt(float64(total)) * (0.85 + rng.Float64()*0.3)
		if b > 90 {
			b = 90
		}
		return int(b)
	}
}

// pointsModel: points roughly track valid check-ins.
func pointsModel(rng *rand.Rand, class Class, total int) int {
	if class == ClassCaught {
		return int(float64(total) * 0.08 * (0.5 + rng.Float64()))
	}
	return int(float64(total) * 1.5 * (0.8 + rng.Float64()*0.4))
}

// forceTopUsers overwrites the tail of the user slice with the named
// individuals of §3.4/§4.2: the super mayor and the 11 users with
// ≥ 5000 check-ins (6 power, 5 caught).
func (w *World) forceTopUsers(rng *rand.Rand) {
	n := len(w.Users)
	idx := n - 12

	// The super mayor: 1265 total check-ins, 865 mayorships (assigned
	// in assignMayors).
	sm := &w.Users[idx]
	sm.Class = ClassSuperMayor
	sm.Seed.TotalCheckins = 1265
	sm.Seed.ValidCheckins = 1265
	sm.Seed.BadgeCount = badgeModel(rng, ClassActive, 1265)
	sm.Seed.Points = pointsModel(rng, ClassActive, 1265)
	idx++

	// Group A: six power users, tens of mayorships each, city-bound.
	for g := 0; g < 6; g++ {
		u := &w.Users[idx]
		u.Class = ClassPower
		u.Seed.TotalCheckins = 5000 + rng.Intn(3000)
		u.Seed.ValidCheckins = u.Seed.TotalCheckins
		u.Seed.BadgeCount = badgeModel(rng, ClassPower, u.Seed.TotalCheckins)
		u.Seed.Points = pointsModel(rng, ClassPower, u.Seed.TotalCheckins)
		idx++
	}
	// Group B: five caught cheaters, the top one over 12,000 check-ins,
	// no mayorships, few badges.
	for g := 0; g < 5; g++ {
		u := &w.Users[idx]
		u.Class = ClassCaught
		if g == 0 {
			u.Seed.TotalCheckins = 12000 + rng.Intn(600)
		} else {
			u.Seed.TotalCheckins = 5000 + rng.Intn(4000)
		}
		u.Seed.ValidCheckins = int(float64(u.Seed.TotalCheckins) * 0.03)
		u.Seed.BadgeCount = rng.Intn(10)
		u.Seed.Points = pointsModel(rng, ClassCaught, u.Seed.TotalCheckins)
		idx++
	}
}

// recentCountModel reproduces Fig 4.1: normal users' recent-list
// presence saturates near ~100 once total check-ins exceed ~500;
// uncaught cheaters stay on high-recent trajectories; caught cheaters
// barely appear (their check-ins were invalidated).
func recentCountModel(rng *rand.Rand, class Class, total int) int {
	switch class {
	case ClassInactive:
		return 0
	case ClassCasual:
		n := rng.Intn(4)
		if n > total {
			n = total
		}
		return n
	case ClassCaught:
		return rng.Intn(5)
	case ClassCheater:
		return int(float64(total) * (0.5 + rng.Float64()*0.3))
	case ClassSuperMayor:
		// Recent presence beyond the 865 solo venues assigned later.
		return 100 + rng.Intn(100)
	default: // active, power
		mean := 100 * (1 - math.Exp(-float64(total)/300))
		v := int(mean * (0.7 + rng.Float64()*0.6))
		if v > total {
			v = total
		}
		return v
	}
}

// assignRecentLists places each user on venue recent-visitor lists,
// respecting the per-venue cap and the class geography: normals stay
// in ≤ 3 cities, cheaters spread over ≥ 30 (Figs 4.3/4.4).
func (w *World) assignRecentLists(rng *rand.Rand) {
	// Venue indexes per city for geographic sampling.
	byCity := make([][]int, len(w.Cities))
	for i, v := range w.Venues {
		byCity[v.City] = append(byCity[v.City], i)
	}
	fill := make([]int, len(w.Venues))
	cap := w.Cfg.RecentListCap

	// pickVenue tries to find an uncapped venue in the city.
	pickVenue := func(city int) int {
		list := byCity[city]
		if len(list) == 0 {
			return -1
		}
		for try := 0; try < 6; try++ {
			v := list[rng.Intn(len(list))]
			if fill[v] < cap {
				return v
			}
		}
		return -1
	}

	for i := range w.Users {
		u := &w.Users[i]
		count := recentCountModel(rng, u.Class, u.Seed.TotalCheckins)
		if count == 0 {
			continue
		}
		cities := w.activityCities(rng, u)
		seen := make(map[int]struct{}, count)
		// Attempts budget: duplicate picks and saturated cities must
		// not stall the generator; accepting fewer placements is fine.
		for attempts := count * 8; len(u.RecentVenues) < count && attempts > 0; attempts-- {
			city := cities[rng.Intn(len(cities))]
			v := pickVenue(city)
			if v < 0 {
				continue // city saturated; try another draw
			}
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			fill[v]++
			u.RecentVenues = append(u.RecentVenues, v)
			w.Venues[v].Seed.RecentVisitors = append(w.Venues[v].Seed.RecentVisitors, lbsn.UserID(i+1))
		}
	}
}

// activityCities returns the city indexes a user's check-ins draw
// from.
func (w *World) activityCities(rng *rand.Rand, u *UserRecord) []int {
	switch u.Class {
	case ClassCheater:
		// 30–40 distinct cities (Fig 4.3 shows >30 incl. Alaska).
		n := 30 + rng.Intn(11)
		if n > len(w.Cities) {
			n = len(w.Cities)
		}
		perm := rng.Perm(len(w.Cities))[:n]
		// Always include home so the pattern isn't trivially disjoint.
		return append(perm, u.HomeCity)
	case ClassSuperMayor:
		n := 10 + rng.Intn(10)
		perm := rng.Perm(len(w.Cities))[:n]
		return append(perm, u.HomeCity)
	default:
		// Home plus up to two travel cities (Fig 4.4: "concentrated in
		// three cities and a few other places").
		cities := []int{u.HomeCity, u.HomeCity, u.HomeCity, u.HomeCity} // weight home 4x
		for n := rng.Intn(3); n > 0; n-- {
			cities = append(cities, rng.Intn(len(w.Cities)))
		}
		return cities
	}
}

// assignMayors distributes mayorships: forced quotas first (super
// mayor's 865 empty venues, group A's tens, uncaught cheaters' tens),
// then fills toward the MayoredVenueFraction target by crowning recent
// visitors, biased toward a mayor-prone minority so mayorships
// concentrate (avg ≈ 5 venues per mayor, paper: 5.45).
func (w *World) assignMayors(rng *rand.Rand) {
	target := int(float64(len(w.Venues)) * w.Cfg.MayoredVenueFraction)
	mayored := 0

	crown := func(v int, user lbsn.UserID) {
		if w.Venues[v].Seed.MayorID != 0 || user == 0 {
			return
		}
		w.Venues[v].Seed.MayorID = user
		w.Users[int(user)-1].Mayorships++
		mayored++
	}

	// Super mayor: venues with empty recent lists become his solo
	// domains ("most of the 865 venues have no other visitors").
	superIdx := -1
	for i := range w.Users {
		if w.Users[i].Class == ClassSuperMayor {
			superIdx = i
			break
		}
	}
	if superIdx >= 0 {
		quota := 865
		if max := len(w.Venues) / 10; quota > max {
			quota = max
		}
		for v := 0; v < len(w.Venues) && quota > 0; v++ {
			if len(w.Venues[v].Seed.RecentVisitors) == 0 && w.Venues[v].Seed.MayorID == 0 {
				w.Venues[v].Seed.RecentVisitors = []lbsn.UserID{lbsn.UserID(superIdx + 1)}
				w.Users[superIdx].RecentVenues = append(w.Users[superIdx].RecentVenues, v)
				crown(v, lbsn.UserID(superIdx+1))
				quota--
			}
		}
	}

	// Group A power users and uncaught cheaters: tens of mayorships
	// drawn from venues they already visit.
	for i := range w.Users {
		u := &w.Users[i]
		var quota int
		switch {
		case u.Class == ClassPower && u.Seed.TotalCheckins >= 5000:
			quota = 20 + rng.Intn(40) // "mayor of tens of venues ... concentrated in a city area"
		case u.Class == ClassCheater:
			quota = 5 + rng.Intn(30)
		default:
			continue
		}
		for _, v := range u.RecentVenues {
			if quota == 0 {
				break
			}
			if w.Venues[v].Seed.MayorID == 0 {
				crown(v, lbsn.UserID(i+1))
				quota--
			}
		}
	}

	// Mayor-prone minority: 10% of active+ users take most remaining
	// crowns, concentrating mayorships.
	var prone []int
	for i := range w.Users {
		if w.Users[i].Class == ClassActive && rng.Float64() < 0.10 {
			prone = append(prone, i)
		}
	}
	proneSet := make(map[int]struct{}, len(prone))
	for _, i := range prone {
		proneSet[i] = struct{}{}
	}

	for v := 0; v < len(w.Venues) && mayored < target; v++ {
		if w.Venues[v].Seed.MayorID != 0 {
			continue
		}
		visitors := w.Venues[v].Seed.RecentVisitors
		if len(visitors) == 0 {
			continue
		}
		// Prefer a mayor-prone visitor; otherwise crown the most active
		// eligible visitor, which concentrates mayorships on heavy
		// users (paper: 5.45 venues per mayor on average). The super
		// mayor is skipped (his 865 stays exact) and caught cheaters
		// are ineligible — their check-ins were invalidated, so they
		// can hold no mayorships (§4.2 group 2).
		var chosen lbsn.UserID
		bestActivity := -1
		for _, vis := range visitors {
			ui := int(vis) - 1
			cls := w.Users[ui].Class
			if (superIdx >= 0 && ui == superIdx) || cls == ClassCaught {
				continue
			}
			if _, ok := proneSet[ui]; ok {
				chosen = vis
				break
			}
			if activity := len(w.Users[ui].RecentVenues); activity > bestActivity {
				bestActivity = activity
				chosen = vis
			}
		}
		crown(v, chosen)
	}

	// Specials: SpecialFraction of venues, >90% mayor-only, plus the
	// forced orphan set (special but no mayor — the E6 targets).
	specials := int(float64(len(w.Venues)) * w.Cfg.SpecialFraction)
	for n := 0; n < specials; n++ {
		v := rng.Intn(len(w.Venues))
		if w.Venues[v].Seed.Special != nil {
			continue
		}
		w.Venues[v].Seed.Special = &lbsn.Special{
			Description: "Free coffee for the mayor",
			MayorOnly:   rng.Float64() < w.Cfg.MayorOnlyFraction,
		}
	}
	orphans := 0
	for v := 0; v < len(w.Venues) && orphans < w.Cfg.OrphanSpecialCount; v++ {
		if w.Venues[v].Seed.MayorID == 0 && w.Venues[v].Seed.Special == nil {
			w.Venues[v].Seed.Special = &lbsn.Special{Description: "Mayor special, unclaimed", MayorOnly: true}
			orphans++
		}
	}
}

// finalizeCounters derives venue check-in counters consistent with the
// recent lists: every listed visitor is at least one unique visitor
// and one check-in; a heavy tail sits on top.
func (w *World) finalizeCounters(rng *rand.Rand) {
	for i := range w.Venues {
		v := &w.Venues[i]
		base := len(v.Seed.RecentVisitors)
		extra := 0
		if base > 0 {
			extra = int(rng.ExpFloat64() * 5)
		}
		v.Seed.UniqueVisitors = base + extra
		if v.Seed.UniqueVisitors > 0 {
			v.Seed.CheckinsHere = v.Seed.UniqueVisitors + int(rng.ExpFloat64()*float64(v.Seed.UniqueVisitors))
		}
	}
}

// LoadInto bulk-loads the world into a service. User index i receives
// lbsn ID i+1 and venue index j receives ID j+1 (the service must be
// empty).
func (w *World) LoadInto(svc *lbsn.Service) error {
	if svc.UserCount() != 0 || svc.VenueCount() != 0 {
		return fmt.Errorf("synth: LoadInto requires an empty service (has %d users, %d venues)",
			svc.UserCount(), svc.VenueCount())
	}
	userSeeds := make([]lbsn.UserSeed, len(w.Users))
	for i, u := range w.Users {
		userSeeds[i] = u.Seed
	}
	svc.BulkLoadUsers(userSeeds)
	venueSeeds := make([]lbsn.VenueSeed, len(w.Venues))
	for i, v := range w.Venues {
		venueSeeds[i] = v.Seed
	}
	svc.BulkLoadVenues(venueSeeds)
	return nil
}

// FillStore materializes the "perfect crawl" of the world straight
// into a store.DB — what the crawler would recover with no losses.
// DeriveStats is run before returning.
func (w *World) FillStore(db *store.DB) {
	for i, u := range w.Users {
		db.UpsertUser(store.UserRow{
			ID:            uint64(i + 1),
			UserName:      u.Seed.Username,
			Name:          u.Seed.Name,
			HomeCity:      u.Seed.HomeCity,
			TotalCheckins: u.Seed.TotalCheckins,
			TotalBadges:   u.Seed.BadgeCount,
			Points:        u.Seed.Points,
			Friends:       u.Seed.FriendCount,
		})
	}
	for j, v := range w.Venues {
		row := store.VenueRow{
			ID:             uint64(j + 1),
			Name:           v.Seed.Name,
			Address:        v.Seed.Address,
			City:           v.Seed.City,
			MayorID:        uint64(v.Seed.MayorID),
			CheckinsHere:   v.Seed.CheckinsHere,
			UniqueVisitors: v.Seed.UniqueVisitors,
			Latitude:       v.Seed.Location.Lat,
			Longitude:      v.Seed.Location.Lon,
		}
		if v.Seed.Special != nil {
			row.Special = v.Seed.Special.Description
			row.SpecialMayor = v.Seed.Special.MayorOnly
		}
		db.UpsertVenue(row)
		for _, uid := range v.Seed.RecentVisitors {
			db.AddRecentCheckin(uint64(uid), uint64(j+1))
		}
	}
	db.DeriveStats()
}

// TrueClass returns the ground-truth class for a service/store user
// ID.
func (w *World) TrueClass(id lbsn.UserID) (Class, bool) {
	i := int(id) - 1
	if i < 0 || i >= len(w.Users) {
		return 0, false
	}
	return w.Users[i].Class, true
}

// CountByClass tallies users per class.
func (w *World) CountByClass() map[Class]int {
	out := make(map[Class]int)
	for _, u := range w.Users {
		out[u.Class]++
	}
	return out
}
