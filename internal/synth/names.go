package synth

// Name material for the synthetic world. Chains are weighted so that
// the biggest chain ("Starbucks") spans every city, making the Fig 3.4
// scatter trace the US territory.

// chain describes a national venue chain.
type chain struct {
	Name   string
	Weight float64
}

var chains = []chain{
	{Name: "Starbucks", Weight: 10},
	{Name: "McDonald's", Weight: 8},
	{Name: "Subway", Weight: 7},
	{Name: "Wendy's", Weight: 4},
	{Name: "Target", Weight: 3},
	{Name: "Best Buy", Weight: 2},
	{Name: "Barnes & Noble", Weight: 2},
	{Name: "Chipotle", Weight: 2},
}

var venueKinds = []string{
	"Coffee House", "Diner", "Bar & Grill", "Pizza", "Bakery", "Books",
	"Records", "Gym", "Park", "Museum", "Theater", "Deli", "Tacos",
	"Brewery", "Salon", "Market", "Library", "Gallery", "Pub", "Cafe",
}

var venueAdjectives = []string{
	"Blue", "Golden", "Old Town", "Riverside", "Downtown", "Corner",
	"Sunset", "Union", "Royal", "Lucky", "Iron", "Copper", "Green",
	"Silver", "Red Door", "Harbor", "Prairie", "Summit", "Maple", "Cedar",
}

var firstNames = []string{
	"Alex", "Sam", "Jordan", "Taylor", "Casey", "Morgan", "Riley",
	"Jamie", "Avery", "Quinn", "Drew", "Blake", "Cameron", "Devin",
	"Elliot", "Frankie", "Harper", "Jesse", "Kai", "Logan", "Maria",
	"Nina", "Omar", "Paula", "Ray", "Sofia", "Tom", "Uma", "Victor", "Wen",
}

var lastNames = []string{
	"Smith", "Johnson", "Lee", "Garcia", "Chen", "Patel", "Brown",
	"Davis", "Miller", "Wilson", "Moore", "Clark", "Lewis", "Walker",
	"Young", "King", "Hill", "Green", "Baker", "Nelson", "Carter",
	"Reyes", "Ortiz", "Nguyen", "Kim", "Park", "Singh", "Khan", "Cruz", "Diaz",
}
