// Package trace is the cluster's event-tracing core: head-sampled,
// zero-alloc on the untraced path, tail-retained.
//
// The design mirrors internal/obs. A Tracer is plumbed through the
// pipeline as a nilable handle; every entry point begins with one
// nil/sampled check, so a build with tracing compiled in but nothing
// sampled pays a single predictable branch per call site — the same
// bar the metrics core set. Sampling is decided once, at ingest
// (head sampling): a configurable fraction of check-ins plus every
// denied claim gets a 16-byte trace ID stamped into the event, and
// that context rides the event through shard rings, stage chains,
// journal appends and cross-node hops. Each node records its own
// *fragment* of the trace; the API layer scatter-gathers fragments
// so a trace spanning origin and owner nodes renders as one tree.
//
// Retention is tail-based: when a fragment completes, it is kept
// only if it turned out interesting — its latency exceeded a rolling
// quantile threshold (read from the live obs histograms), it raised
// an alert, or it hit a drop/DLQ/spill path. Everything else is
// recycled through a sync.Pool without ever reaching the flight
// recorder, so steady-state tracing of a healthy cluster costs a
// bounded ring of the slowest and strangest traces and nothing more.
package trace

import (
	"encoding/hex"
	"math/rand/v2"
)

// ID is a 16-byte trace identifier. The zero ID means "untraced" —
// events carry IDs by value, so absence needs no pointer.
type ID [16]byte

// IsZero reports whether the ID is the untraced sentinel.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the ID as 32 lowercase hex digits (allocates; only
// called on traced/cold paths).
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// ParseID parses the 32-hex-digit form. ok is false for malformed
// input and for the zero ID (which is not a valid trace reference).
func ParseID(s string) (ID, bool) {
	var id ID
	if len(s) != 32 {
		return ID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return ID{}, false
	}
	return id, !id.IsZero()
}

// Context flag bits. FlagSampled marks the event as traced;
// FlagForced marks a trace that must be retained regardless of the
// latency threshold (denied claims — the paper's interesting events —
// are always forced).
const (
	FlagSampled uint8 = 1 << 0
	FlagForced  uint8 = 1 << 1
)

// Context is the span context stamped into an event at ingest and
// propagated across the wire: the trace ID plus a flags byte. The
// zero Context is the untraced state every event starts in.
type Context struct {
	ID    ID
	Flags uint8
}

// Sampled reports whether the event is traced. This is THE hot-path
// check: untraced events short-circuit every tracing call site here.
func (c Context) Sampled() bool { return c.Flags&FlagSampled != 0 }

// Forced reports whether the trace bypasses the retention threshold.
func (c Context) Forced() bool { return c.Flags&FlagForced != 0 }

// newID draws a random non-zero trace ID. Uniqueness is
// probabilistic (128 random bits), which is the usual tracing
// contract.
func newID() ID {
	var id ID
	for id.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

// Span is one timed step of a trace fragment: a static name, start
// and end instants (UnixNano), and an optional pre-formatted
// attribute string ("peer=node-b codec=bin/2"). Spans are recorded
// flat; the tree structure of a trace is its fragments (one per
// node) ordered by time.
type Span struct {
	Name  string
	Start int64
	End   int64
	Attrs string
}

// Trace is one node-local fragment of a distributed trace: the spans
// this node recorded for one traced event, plus the tail-retention
// verdict inputs (alerted / dropped / forced). Fragments from
// different nodes sharing an ID are merged at query time.
type Trace struct {
	ID      ID
	Node    string
	UserID  uint64
	VenueID uint64
	Start   int64
	End     int64
	Alerted bool
	Dropped bool
	Forced  bool
	// Detectors lists the stages that alerted on this event, in
	// order. Powers the detector filter on /api/v1/traces.
	Detectors []string
	Spans     []Span
}

// reset clears a fragment for pool reuse, keeping the allocated
// span/detector capacity.
func (t *Trace) reset() {
	t.ID = ID{}
	t.Node = ""
	t.UserID, t.VenueID = 0, 0
	t.Start, t.End = 0, 0
	t.Alerted, t.Dropped, t.Forced = false, false, false
	t.Detectors = t.Detectors[:0]
	t.Spans = t.Spans[:0]
}
