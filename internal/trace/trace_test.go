package trace

import (
	"strings"
	"testing"
	"time"
)

func TestParseIDRoundTrip(t *testing.T) {
	id := newID()
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q, want 32 hex digits", s)
	}
	got, ok := ParseID(s)
	if !ok || got != id {
		t.Fatalf("ParseID(%q) = %v, %v; want %v, true", s, got, ok, id)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 32), strings.Repeat("g", 32), strings.Repeat("a", 31)} {
		if _, ok := ParseID(bad); ok {
			t.Errorf("ParseID(%q) accepted", bad)
		}
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if ctx := tr.Sample(true); ctx.Sampled() {
		t.Fatal("nil tracer sampled")
	}
	// None of these may panic.
	tr.Begin(Context{}, 1, 2, 0)
	tr.Span(Context{}, "x", 0, 0, "")
	tr.MarkAlert(Context{}, "d")
	tr.MarkDrop(Context{}, "why", 0)
	tr.End(Context{}, 0)
	tr.SpanKept(ID{}, "x", 0, 0, "")
	if got := tr.List(Filter{}); got != nil {
		t.Fatalf("nil tracer List = %v", got)
	}
	if _, ok := tr.Get(ID{1}); ok {
		t.Fatal("nil tracer Get found something")
	}
	if tr.Node() != "" {
		t.Fatal("nil tracer has a node")
	}
}

func TestSampleRates(t *testing.T) {
	off := New(Config{Node: "n", SampleRate: 0})
	for i := 0; i < 100; i++ {
		if off.Sample(false).Sampled() {
			t.Fatal("rate 0 sampled an accepted check-in")
		}
	}
	// Denied claims always trace, forced past the threshold.
	ctx := off.Sample(true)
	if !ctx.Sampled() || !ctx.Forced() {
		t.Fatalf("denied claim: ctx = %+v, want sampled+forced", ctx)
	}

	all := New(Config{Node: "n", SampleRate: 1})
	seen := map[ID]bool{}
	for i := 0; i < 100; i++ {
		c := all.Sample(false)
		if !c.Sampled() || c.Forced() {
			t.Fatalf("rate 1: ctx = %+v, want sampled, not forced", c)
		}
		if seen[c.ID] {
			t.Fatal("duplicate trace ID minted")
		}
		seen[c.ID] = true
	}
}

// endAt completes a begun trace n nanoseconds after start.
func endAt(tr *Tracer, ctx Context, start, dur int64) {
	tr.Begin(ctx, 7, 9, start)
	tr.End(ctx, start+dur)
}

func TestTailRetention(t *testing.T) {
	// Threshold 1s: only traces slower than that survive on latency
	// alone. Use real UnixNano instants so the threshold cache
	// refreshes on first use.
	tr := New(Config{Node: "n", SampleRate: 1, Threshold: func() float64 { return 1.0 }})
	base := time.Now().UnixNano()

	fast := tr.Sample(false)
	endAt(tr, fast, base, int64(time.Millisecond))
	if _, ok := tr.Get(fast.ID); ok {
		t.Fatal("fast healthy trace retained; want recycled")
	}

	slow := tr.Sample(false)
	endAt(tr, slow, base, int64(2*time.Second))
	if _, ok := tr.Get(slow.ID); !ok {
		t.Fatal("slow trace not retained")
	}

	alerted := tr.Sample(false)
	tr.Begin(alerted, 7, 9, base)
	tr.MarkAlert(alerted, "speed")
	tr.End(alerted, base+10)
	v, ok := tr.Get(alerted.ID)
	if !ok || !v.Alerted || len(v.Detectors) != 1 || v.Detectors[0] != "speed" {
		t.Fatalf("alerted trace: %+v, %v; want retained with detector", v, ok)
	}

	dropped := tr.Sample(false)
	tr.Begin(dropped, 7, 9, base)
	tr.MarkDrop(dropped, "ring-full", base+5)
	tr.End(dropped, base+5)
	v, ok = tr.Get(dropped.ID)
	if !ok || !v.Dropped {
		t.Fatalf("dropped trace: %+v, %v; want retained with Dropped", v, ok)
	}
	if len(v.Spans) != 1 || v.Spans[0].Name != "drop" || v.Spans[0].Attrs != "ring-full" {
		t.Fatalf("drop span missing: %+v", v.Spans)
	}

	forced := tr.Sample(true) // denied
	endAt(tr, forced, base, 1)
	if v, ok := tr.Get(forced.ID); !ok || !v.Forced {
		t.Fatalf("forced trace: %+v, %v; want retained", v, ok)
	}
}

func TestRecorderEviction(t *testing.T) {
	tr := New(Config{Node: "n", SampleRate: 1, Buffer: 2})
	base := time.Now().UnixNano()
	var ids []ID
	for i := 0; i < 3; i++ {
		ctx := tr.Sample(true) // forced => all retained
		endAt(tr, ctx, base+int64(i), 1)
		ids = append(ids, ctx.ID)
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("oldest trace survived a full ring")
	}
	for _, id := range ids[1:] {
		if _, ok := tr.Get(id); !ok {
			t.Fatalf("recent trace %s evicted", id)
		}
	}
}

func TestSpanKept(t *testing.T) {
	tr := New(Config{Node: "n", SampleRate: 1})
	base := time.Now().UnixNano()
	ctx := tr.Sample(true)
	endAt(tr, ctx, base, 10)

	tr.SpanKept(ctx.ID, "replica-ship", base+20, base+30, "follower=b")
	v, ok := tr.Get(ctx.ID)
	if !ok {
		t.Fatal("trace gone")
	}
	found := false
	for _, sp := range v.Spans {
		if sp.Name == "replica-ship" && sp.Attrs == "follower=b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-completion span not appended: %+v", v.Spans)
	}
	// The envelope stretches to cover the late span.
	if wantMs := float64(30) / 1e6; v.DurationMs < wantMs {
		t.Fatalf("DurationMs = %v, want >= %v", v.DurationMs, wantMs)
	}
	// Unknown IDs are a silent no-op.
	tr.SpanKept(ID{0xff}, "x", 0, 1, "")
}

func TestMaxSpansBound(t *testing.T) {
	tr := New(Config{Node: "n", SampleRate: 1})
	base := time.Now().UnixNano()
	ctx := tr.Sample(true)
	tr.Begin(ctx, 1, 2, base)
	for i := 0; i < maxSpans*2; i++ {
		tr.Span(ctx, "stage", base, base+1, "")
	}
	tr.End(ctx, base+2)
	v, ok := tr.Get(ctx.ID)
	if !ok {
		t.Fatal("trace gone")
	}
	if len(v.Spans) != maxSpans {
		t.Fatalf("spans = %d, want capped at %d", len(v.Spans), maxSpans)
	}
}

func TestListFilters(t *testing.T) {
	tr := New(Config{Node: "n", SampleRate: 1})
	base := time.Now().UnixNano()

	mk := func(user uint64, dur int64, detector string) ID {
		ctx := tr.Sample(true)
		tr.Begin(ctx, user, 1, base)
		if detector != "" {
			tr.MarkAlert(ctx, detector)
		}
		tr.End(ctx, base+dur)
		base += 100 // distinct, increasing starts
		return ctx.ID
	}
	u1 := mk(1, 10, "")
	u2slow := mk(2, int64(5*time.Second), "")
	u2alert := mk(2, 20, "speed")

	if got := tr.List(Filter{}); len(got) != 3 {
		t.Fatalf("unfiltered: %d traces, want 3", len(got))
	}
	got := tr.List(Filter{UserID: 2})
	if len(got) != 2 {
		t.Fatalf("user filter: %d, want 2", len(got))
	}
	// Newest first.
	if got[0].ID != u2alert.String() || got[1].ID != u2slow.String() {
		t.Fatalf("order: %s, %s", got[0].ID, got[1].ID)
	}
	if got := tr.List(Filter{Detector: "speed"}); len(got) != 1 || got[0].ID != u2alert.String() {
		t.Fatalf("detector filter: %+v", got)
	}
	if got := tr.List(Filter{MinDurationNanos: int64(time.Second)}); len(got) != 1 || got[0].ID != u2slow.String() {
		t.Fatalf("duration filter: %+v", got)
	}
	if got := tr.List(Filter{Limit: 1}); len(got) != 1 || got[0].ID != u2alert.String() {
		t.Fatalf("limit: %+v", got)
	}
	_ = u1
}

func TestMergeFragments(t *testing.T) {
	origin := View{
		ID: "abc", UserID: 7, VenueID: 9, Start: 1000, DurationMs: 0.001, // ends 2000
		Nodes: []string{"a"},
		Spans: []SpanView{
			{Name: "ingest", Node: "a", Start: 1000},
			{Name: "forward", Node: "a", Start: 1500},
		},
	}
	owner := View{
		ID: "abc", Start: 1800, DurationMs: 0.0012, // ends 3000
		Alerted: true, Detectors: []string{"speed"},
		Nodes: []string{"b"},
		Spans: []SpanView{
			{Name: "stage", Node: "b", Start: 1900},
		},
	}
	m := Merge([]View{origin, owner})
	if m.ID != "abc" || m.UserID != 7 || m.VenueID != 9 {
		t.Fatalf("identity lost: %+v", m)
	}
	if !m.Alerted || len(m.Detectors) != 1 {
		t.Fatalf("verdicts not OR-ed: %+v", m)
	}
	if len(m.Nodes) != 2 || m.Nodes[0] != "a" || m.Nodes[1] != "b" {
		t.Fatalf("nodes: %v", m.Nodes)
	}
	if m.Start != 1000 {
		t.Fatalf("start: %d", m.Start)
	}
	// Envelope reaches the owner fragment's end: 1800 + 1200ns.
	if gotEnd := m.Start + int64(m.DurationMs*1e6); gotEnd != 3000 {
		t.Fatalf("end: %d, want 3000", gotEnd)
	}
	names := make([]string, len(m.Spans))
	for i, sp := range m.Spans {
		names[i] = sp.Name
	}
	if strings.Join(names, ",") != "ingest,forward,stage" {
		t.Fatalf("span order: %v", names)
	}
	if Merge(nil).ID != "" {
		t.Fatal("empty merge not zero")
	}
}

func TestThresholdCacheRefresh(t *testing.T) {
	calls := 0
	tr := New(Config{Node: "n", SampleRate: 1, Threshold: func() float64 { calls++; return 10 }})
	base := time.Now().UnixNano()
	for i := 0; i < 100; i++ {
		ctx := tr.Sample(false)
		endAt(tr, ctx, base+int64(i), 1)
	}
	if calls != 1 {
		t.Fatalf("threshold consulted %d times within the refresh window, want 1", calls)
	}
	// Past the refresh window it is consulted again.
	ctx := tr.Sample(false)
	endAt(tr, ctx, base+int64(time.Second), 1)
	if calls != 2 {
		t.Fatalf("threshold consulted %d times after refresh window, want 2", calls)
	}
}
