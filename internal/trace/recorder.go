package trace

import (
	"sort"
	"sync"
)

// recorder is the flight recorder: a bounded ring of retained
// fragments plus an ID index. Keeping a new fragment evicts the
// oldest; evicted fragments go back to the tracer's pool.
type recorder struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	byID map[ID]*Trace
}

func (r *recorder) init(capacity int) {
	r.buf = make([]*Trace, capacity)
	r.byID = make(map[ID]*Trace, capacity)
}

func (r *recorder) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// keep retains tr, returning the evicted fragment (nil while the
// ring is filling) for the caller to recycle.
func (r *recorder) keep(tr *Trace) *Trace {
	r.mu.Lock()
	old := r.buf[r.next]
	if old != nil {
		delete(r.byID, old.ID)
	}
	// A re-kept ID (same trace finishing twice — possible only under
	// pathological replay) overwrites the index entry; the stale ring
	// slot ages out naturally.
	r.buf[r.next] = tr
	r.byID[tr.ID] = tr
	r.next = (r.next + 1) % len(r.buf)
	r.mu.Unlock()
	return old
}

func (r *recorder) appendSpan(id ID, sp Span) {
	r.mu.Lock()
	if tr := r.byID[id]; tr != nil && len(tr.Spans) < maxSpans {
		tr.Spans = append(tr.Spans, sp)
		if sp.End > tr.End {
			tr.End = sp.End
		}
	}
	r.mu.Unlock()
}

func (r *recorder) get(id ID) (View, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := r.byID[id]
	if tr == nil {
		return View{}, false
	}
	return snapshot(tr), true
}

func (r *recorder) list(f Filter) []View {
	r.mu.Lock()
	out := make([]View, 0, len(r.byID))
	for _, tr := range r.byID {
		if f.matches(tr) {
			out = append(out, snapshot(tr))
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start > out[j].Start })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// Filter selects retained fragments for listing.
type Filter struct {
	// UserID filters to one user when nonzero.
	UserID uint64
	// Detector keeps only traces a named detector alerted on.
	Detector string
	// MinDurationNanos keeps only traces at least this long.
	MinDurationNanos int64
	// Limit caps the result count (newest first); 0 means all.
	Limit int
}

func (f Filter) matches(tr *Trace) bool {
	if f.UserID != 0 && tr.UserID != f.UserID {
		return false
	}
	if f.MinDurationNanos > 0 && tr.End-tr.Start < f.MinDurationNanos {
		return false
	}
	if f.Detector != "" {
		for _, d := range tr.Detectors {
			if d == f.Detector {
				return true
			}
		}
		return false
	}
	return true
}

// SpanView is one span in the API rendering of a trace, attributed
// to the node that recorded it.
type SpanView struct {
	Name       string  `json:"name"`
	Node       string  `json:"node"`
	Start      int64   `json:"start"`
	DurationMs float64 `json:"durationMs"`
	Attrs      string  `json:"attrs,omitempty"`
}

// View is the API rendering of a trace: one node's fragment, or —
// after Merge — the stitched cluster-wide tree. Spans are sorted by
// start time; Nodes lists every node that contributed a fragment.
type View struct {
	ID         string     `json:"id"`
	UserID     uint64     `json:"userId"`
	VenueID    uint64     `json:"venueId"`
	Start      int64      `json:"start"`
	DurationMs float64    `json:"durationMs"`
	Alerted    bool       `json:"alerted"`
	Dropped    bool       `json:"dropped"`
	Forced     bool       `json:"forced"`
	Detectors  []string   `json:"detectors,omitempty"`
	Nodes      []string   `json:"nodes"`
	Spans      []SpanView `json:"spans"`
}

// snapshot copies a retained fragment into an owned View. Callers
// hold the recorder lock; the copy is what makes recycling safe.
func snapshot(tr *Trace) View {
	v := View{
		ID:         tr.ID.String(),
		UserID:     tr.UserID,
		VenueID:    tr.VenueID,
		Start:      tr.Start,
		DurationMs: float64(tr.End-tr.Start) / 1e6,
		Alerted:    tr.Alerted,
		Dropped:    tr.Dropped,
		Forced:     tr.Forced,
		Nodes:      []string{tr.Node},
		Spans:      make([]SpanView, len(tr.Spans)),
	}
	if len(tr.Detectors) > 0 {
		v.Detectors = append([]string(nil), tr.Detectors...)
	}
	for i, sp := range tr.Spans {
		v.Spans[i] = SpanView{
			Name:       sp.Name,
			Node:       tr.Node,
			Start:      sp.Start,
			DurationMs: float64(sp.End-sp.Start) / 1e6,
			Attrs:      sp.Attrs,
		}
	}
	return v
}

// Merge stitches per-node fragments of one trace into a single view:
// spans interleaved by start time, node set unioned, verdicts OR-ed,
// the envelope spanning the earliest fragment start to the latest
// span end. Fragments for different IDs must not be mixed; the first
// fragment's identity wins on disagreement.
func Merge(fragments []View) View {
	if len(fragments) == 0 {
		return View{}
	}
	m := fragments[0]
	end := m.Start + int64(m.DurationMs*1e6)
	for _, f := range fragments[1:] {
		if f.Start < m.Start && f.Start != 0 {
			m.Start = f.Start
		}
		if fe := f.Start + int64(f.DurationMs*1e6); fe > end {
			end = fe
		}
		m.Alerted = m.Alerted || f.Alerted
		m.Dropped = m.Dropped || f.Dropped
		m.Forced = m.Forced || f.Forced
		if m.UserID == 0 {
			m.UserID, m.VenueID = f.UserID, f.VenueID
		}
		m.Detectors = append(m.Detectors, f.Detectors...)
		m.Nodes = append(m.Nodes, f.Nodes...)
		m.Spans = append(m.Spans, f.Spans...)
	}
	m.Nodes = dedupeStrings(m.Nodes)
	m.Detectors = dedupeStrings(m.Detectors)
	sort.SliceStable(m.Spans, func(i, j int) bool { return m.Spans[i].Start < m.Spans[j].Start })
	m.DurationMs = float64(end-m.Start) / 1e6
	return m
}

func dedupeStrings(in []string) []string {
	if len(in) < 2 {
		return in
	}
	sort.Strings(in)
	out := in[:1]
	for _, s := range in[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}
