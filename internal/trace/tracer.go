package trace

import (
	"math"
	"math/rand/v2"
	"sync"
	"sync/atomic"

	"locheat/internal/obs"
)

// activeShards stripes the in-flight fragment table. Traced events
// are a sampled minority, so contention is low; 16 shards keeps the
// table off any single lock without wasting memory.
const activeShards = 16

// maxSpans bounds one fragment's span list. A runaway instrumentation
// loop (or a hostile peer feeding spans into a kept trace) saturates
// the fragment instead of growing it.
const maxSpans = 64

// thresholdRefreshNanos is how long a cached retention threshold is
// trusted before the Threshold func is consulted again. Reading a
// histogram quantile snapshots four shards of 252 buckets — cheap,
// but not per-event cheap.
const thresholdRefreshNanos = 250e6

// Config tunes a Tracer.
type Config struct {
	// Node is this node's ID, stamped on every fragment so merged
	// traces attribute spans to nodes.
	Node string
	// SampleRate is the head-sampling fraction of accepted check-ins
	// in [0,1]. Denied claims are always sampled regardless.
	SampleRate float64
	// Buffer is the flight-recorder capacity in retained fragments
	// (default 256). The recorder is a ring: keeping a new
	// interesting trace recycles the oldest.
	Buffer int
	// Threshold returns the current tail-retention latency threshold
	// in seconds — typically a rolling p99 read from the detection
	// latency histogram. Fragments slower than this are kept.
	// Nil (or a func returning 0, as an empty histogram's quantile
	// does) keeps every completed sampled trace, which is exactly
	// right at startup: the first traces seed the baseline.
	Threshold func() float64
	// Obs registers the tracer's own telemetry (sampled/kept/recycled
	// counters, active + retained gauges). Nil runs unobserved.
	Obs *obs.Registry
}

// Tracer records trace fragments for sampled events. The zero-value
// handle rules from obs apply: a nil *Tracer is a valid no-op tracer,
// and every method takes the one-branch exit on nil or untraced input.
type Tracer struct {
	node   string
	buffer int
	// rateBits is SampleRate mapped onto the uint64 range: sample
	// when rand.Uint64() < rateBits. Zero never samples without a
	// branch on the float.
	rateBits uint64

	thresh func() float64
	// cachedThresh holds the last threshold read as float64 bits;
	// threshAt is when (UnixNano) it was read.
	cachedThresh atomic.Uint64
	threshAt     atomic.Int64

	shards [activeShards]activeShard
	pool   sync.Pool
	rec    recorder

	sampled  *obs.Counter
	kept     *obs.Counter
	recycled *obs.Counter
}

type activeShard struct {
	mu     sync.Mutex
	active map[ID]*Trace
}

// New builds a Tracer. Unlike the obs handles a Tracer has real
// configuration, so construction is explicit; pass nil where tracing
// is off.
func New(cfg Config) *Tracer {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	t := &Tracer{
		node:   cfg.Node,
		buffer: cfg.Buffer,
		thresh: cfg.Threshold,
	}
	switch {
	case cfg.SampleRate >= 1:
		t.rateBits = math.MaxUint64
	case cfg.SampleRate > 0:
		t.rateBits = uint64(cfg.SampleRate * math.MaxUint64)
	}
	t.pool.New = func() any {
		return &Trace{Spans: make([]Span, 0, 16)}
	}
	for i := range t.shards {
		t.shards[i].active = make(map[ID]*Trace)
	}
	t.rec.init(cfg.Buffer)
	t.registerObs(cfg.Obs)
	return t
}

func (t *Tracer) registerObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	t.sampled = reg.Counter("locheat_trace_sampled_total",
		"events head-sampled into a trace (rate draw or forced deny)")
	t.kept = reg.Counter("locheat_trace_kept_total",
		"completed fragments retained by the flight recorder")
	t.recycled = reg.Counter("locheat_trace_recycled_total",
		"completed fragments recycled as uninteresting (tail sampling)")
	reg.GaugeFunc("locheat_trace_active",
		"trace fragments currently in flight",
		func() float64 { return float64(t.activeCount()) })
	reg.GaugeFunc("locheat_trace_retained",
		"trace fragments held by the flight recorder",
		func() float64 { return float64(t.rec.len()) })
}

func (t *Tracer) activeCount() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.active)
		s.mu.Unlock()
	}
	return n
}

// Node returns the configured node ID ("" on a nil tracer).
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Sample makes the head-sampling decision for a fresh event: denied
// claims always trace (forced past the retention threshold — they
// are the paper's interesting events), accepted ones trace at the
// configured rate. Returns the zero Context when untraced. This is
// the only place trace IDs are minted.
func (t *Tracer) Sample(denied bool) Context {
	if t == nil {
		return Context{}
	}
	if denied {
		t.sampled.Inc()
		return Context{ID: newID(), Flags: FlagSampled | FlagForced}
	}
	if t.rateBits == 0 || rand.Uint64() >= t.rateBits {
		return Context{}
	}
	t.sampled.Inc()
	return Context{ID: newID(), Flags: FlagSampled}
}

func (t *Tracer) shardFor(id ID) *activeShard {
	return &t.shards[id[0]&(activeShards-1)]
}

// fragment returns the in-flight fragment for ctx, creating it on
// first touch. Creation is idempotent so Begin and late span sources
// can race benignly.
func (t *Tracer) fragment(ctx Context, now int64) *Trace {
	s := t.shardFor(ctx.ID)
	s.mu.Lock()
	tr := s.active[ctx.ID]
	if tr == nil {
		tr = t.pool.Get().(*Trace)
		tr.reset()
		tr.ID = ctx.ID
		tr.Node = t.node
		tr.Start = now
		tr.Forced = ctx.Forced()
		s.active[ctx.ID] = tr
	}
	s.mu.Unlock()
	return tr
}

// Begin opens (or refreshes) this node's fragment for a traced
// event, recording who the event is about. No-op when untraced.
func (t *Tracer) Begin(ctx Context, userID, venueID uint64, now int64) {
	if t == nil || !ctx.Sampled() {
		return
	}
	s := t.shardFor(ctx.ID)
	s.mu.Lock()
	tr := s.active[ctx.ID]
	if tr == nil {
		tr = t.pool.Get().(*Trace)
		tr.reset()
		tr.ID = ctx.ID
		tr.Node = t.node
		tr.Start = now
		s.active[ctx.ID] = tr
	}
	tr.Forced = tr.Forced || ctx.Forced()
	tr.UserID, tr.VenueID = userID, venueID
	s.mu.Unlock()
}

// Span records one timed step on the event's fragment. Attrs is a
// pre-formatted attribute string; build it only after the sampled
// check at the call site so untraced events never pay for it.
func (t *Tracer) Span(ctx Context, name string, start, end int64, attrs string) {
	if t == nil || !ctx.Sampled() {
		return
	}
	tr := t.fragment(ctx, start)
	s := t.shardFor(ctx.ID)
	s.mu.Lock()
	if len(tr.Spans) < maxSpans {
		tr.Spans = append(tr.Spans, Span{Name: name, Start: start, End: end, Attrs: attrs})
	}
	s.mu.Unlock()
}

// MarkAlert records that a detector alerted on the traced event —
// an automatic retention verdict.
func (t *Tracer) MarkAlert(ctx Context, detector string) {
	if t == nil || !ctx.Sampled() {
		return
	}
	s := t.shardFor(ctx.ID)
	s.mu.Lock()
	if tr := s.active[ctx.ID]; tr != nil {
		tr.Alerted = true
		tr.Detectors = append(tr.Detectors, detector)
	}
	s.mu.Unlock()
}

// MarkDrop records that the traced event hit a loss path (ring
// drop, DLQ, forward spill, stage filter) — also an automatic
// retention verdict. why becomes a zero-length span so the drop
// site is visible in the tree.
func (t *Tracer) MarkDrop(ctx Context, why string, now int64) {
	if t == nil || !ctx.Sampled() {
		return
	}
	tr := t.fragment(ctx, now)
	s := t.shardFor(ctx.ID)
	s.mu.Lock()
	tr.Dropped = true
	if len(tr.Spans) < maxSpans {
		tr.Spans = append(tr.Spans, Span{Name: "drop", Start: now, End: now, Attrs: why})
	}
	s.mu.Unlock()
}

// End completes this node's fragment and applies the tail-retention
// policy: keep it if the event alerted, was dropped, was forced, or
// ran longer than the rolling threshold; recycle it otherwise.
func (t *Tracer) End(ctx Context, now int64) {
	if t == nil || !ctx.Sampled() {
		return
	}
	s := t.shardFor(ctx.ID)
	s.mu.Lock()
	tr := s.active[ctx.ID]
	delete(s.active, ctx.ID)
	s.mu.Unlock()
	if tr == nil {
		return
	}
	tr.End = now
	if tr.Alerted || tr.Dropped || tr.Forced || now-tr.Start > t.thresholdNanos(now) {
		t.kept.Inc()
		if old := t.rec.keep(tr); old != nil {
			old.reset()
			t.pool.Put(old)
		}
		return
	}
	t.recycled.Inc()
	tr.reset()
	t.pool.Put(tr)
}

// SpanKept appends a span to an already-retained fragment — the ship
// hop happens after the owner fragment completed, and is only worth
// recording on traces that survived retention anyway. No-op if the
// trace was recycled or already evicted from the recorder.
func (t *Tracer) SpanKept(id ID, name string, start, end int64, attrs string) {
	if t == nil || id.IsZero() {
		return
	}
	t.rec.appendSpan(id, Span{Name: name, Start: start, End: end, Attrs: attrs})
}

// thresholdNanos returns the retention threshold in nanoseconds,
// refreshing the cached quantile read at most every 250ms.
func (t *Tracer) thresholdNanos(now int64) int64 {
	if t.thresh == nil {
		return 0
	}
	last := t.threshAt.Load()
	if now-last > thresholdRefreshNanos && t.threshAt.CompareAndSwap(last, now) {
		t.cachedThresh.Store(math.Float64bits(t.thresh()))
	}
	return int64(math.Float64frombits(t.cachedThresh.Load()) * 1e9)
}

// List snapshots retained fragments matching the filter, newest
// first. Cold path: copies out so callers never see recycled memory.
func (t *Tracer) List(f Filter) []View {
	if t == nil {
		return nil
	}
	return t.rec.list(f)
}

// Get snapshots the retained fragment for id, if any.
func (t *Tracer) Get(id ID) (View, bool) {
	if t == nil {
		return View{}, false
	}
	return t.rec.get(id)
}
