// Package plot renders the paper's figures as ASCII scatter and line
// charts so cmd/experiments can print them in a terminal: the
// Starbucks US map (Fig 3.4), the virtual-tour path (Fig 3.5), the
// aggregate curves (Figs 4.1/4.2) and the per-user check-in maps
// (Figs 4.3/4.4).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// XY is one data point.
type XY struct {
	X, Y float64
}

// Scatter renders points into a width×height character grid with axis
// labels. Marker is the glyph for occupied cells ('*' if zero).
func Scatter(points []XY, width, height int, marker byte, title string) string {
	if width < 10 {
		width = 60
	}
	if height < 4 {
		height = 20
	}
	if marker == 0 {
		marker = '*'
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(points) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	minX, maxX := points[0].X, points[0].X
	minY, maxY := points[0].Y, points[0].Y
	for _, p := range points[1:] {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range points {
		col := int((p.X - minX) / (maxX - minX) * float64(width-1))
		row := int((p.Y - minY) / (maxY - minY) * float64(height-1))
		grid[height-1-row][col] = marker
	}

	fmt.Fprintf(&b, "%11.4f +%s+\n", maxY, strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "%11s |%s|\n", "", string(row))
	}
	fmt.Fprintf(&b, "%11.4f +%s+\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&b, "%12s%-*.4f%*.4f\n", "", width/2, minX, width/2, maxX)
	return b.String()
}

// Line renders a curve of (x, y) pairs as a column chart: one output
// row per point, with a bar proportional to y. Suits the Fig 4.1/4.2
// aggregate curves where exact values matter more than shape.
func Line(points []XY, barWidth int, title, xLabel, yLabel string) string {
	if barWidth <= 0 {
		barWidth = 50
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(points) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	maxY := points[0].Y
	for _, p := range points[1:] {
		maxY = math.Max(maxY, p.Y)
	}
	if maxY <= 0 {
		maxY = 1
	}
	fmt.Fprintf(&b, "%10s | %s\n", xLabel, yLabel)
	for _, p := range points {
		n := int(p.Y / maxY * float64(barWidth))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%10.0f | %s %.2f\n", p.X, strings.Repeat("#", n), p.Y)
	}
	return b.String()
}

// GeoScatter is a convenience for longitude/latitude clouds: longitude
// on x, latitude on y, which is how Figs 3.4/3.5/4.3/4.4 are drawn.
func GeoScatter(lonLat []XY, title string) string {
	return Scatter(lonLat, 72, 24, '*', title)
}
