package plot

import (
	"strings"
	"testing"
)

func TestScatterBasic(t *testing.T) {
	pts := []XY{{X: 0, Y: 0}, {X: 10, Y: 10}, {X: 5, Y: 5}}
	out := Scatter(pts, 40, 10, '*', "test plot")
	if !strings.Contains(out, "test plot") {
		t.Error("title missing")
	}
	if strings.Count(out, "*") < 2 {
		t.Errorf("markers missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + top border + 10 rows + bottom border + x labels.
	if len(lines) != 14 {
		t.Errorf("output has %d lines, want 14:\n%s", len(lines), out)
	}
}

func TestScatterEmpty(t *testing.T) {
	out := Scatter(nil, 40, 10, 0, "empty")
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty scatter = %q", out)
	}
}

func TestScatterDegenerateRange(t *testing.T) {
	// All points identical: must not divide by zero.
	pts := []XY{{X: 1, Y: 1}, {X: 1, Y: 1}}
	out := Scatter(pts, 20, 5, 0, "")
	if !strings.Contains(out, "*") {
		t.Error("identical points should still render a marker")
	}
}

func TestScatterDefaults(t *testing.T) {
	pts := []XY{{X: 0, Y: 0}, {X: 1, Y: 1}}
	out := Scatter(pts, 1, 1, 0, "") // silly dims fall back to defaults
	if len(out) == 0 {
		t.Fatal("no output")
	}
	if !strings.Contains(out, "*") {
		t.Error("default marker not used")
	}
}

func TestLineChart(t *testing.T) {
	pts := []XY{{X: 100, Y: 10}, {X: 200, Y: 20}, {X: 300, Y: 0}}
	out := Line(pts, 20, "curve", "total", "avg")
	if !strings.Contains(out, "curve") || !strings.Contains(out, "total") {
		t.Error("labels missing")
	}
	rows := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(rows) != 5 { // title + header + 3 data rows
		t.Errorf("rows = %d, want 5:\n%s", len(rows), out)
	}
	// The max row gets the longest bar.
	if !strings.Contains(rows[3], strings.Repeat("#", 20)) {
		t.Errorf("max row bar wrong: %q", rows[3])
	}
}

func TestLineEmptyAndDefaults(t *testing.T) {
	if out := Line(nil, 0, "t", "x", "y"); !strings.Contains(out, "(no data)") {
		t.Errorf("empty line chart = %q", out)
	}
	pts := []XY{{X: 1, Y: -5}} // negative y clamps to zero-length bar
	out := Line(pts, 0, "", "x", "y")
	if strings.Contains(out, "#") {
		t.Error("negative value should render no bar")
	}
}

func TestGeoScatter(t *testing.T) {
	pts := []XY{{X: -122.4, Y: 37.8}, {X: -74.0, Y: 40.7}}
	out := GeoScatter(pts, "US")
	if !strings.Contains(out, "US") || strings.Count(out, "*") != 2 {
		t.Errorf("geo scatter wrong:\n%s", out)
	}
}
