package obs

import (
	"strings"
	"testing"
	"time"
)

// The core record benchmarks back the ISSUE acceptance bar: hot-path
// instrumentation at 0 allocs/op. Run with -benchmem.

func BenchmarkObsCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", Seconds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)*37 + 1)
	}
}

func BenchmarkObsHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", Seconds)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			h.Observe(i*37 + 1)
		}
	})
}

func BenchmarkObsHistogramObserveSince(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", Seconds)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(start)
	}
}

func BenchmarkObsNilHandles(b *testing.B) {
	var c *Counter
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(int64(i))
	}
}

func BenchmarkObsWritePrometheus(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 8; i++ {
		reg.Counter("bench_processed_total", "", "shard", string(rune('0'+i))).Add(uint64(i))
		reg.Histogram("bench_stage_seconds", "", Seconds, "shard", string(rune('0'+i))).Observe(int64(i + 1))
	}
	b.ReportAllocs()
	var sb strings.Builder
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := reg.WritePrometheus(&sb); err != nil {
			b.Fatal(err)
		}
	}
}
