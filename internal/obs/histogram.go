package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Scale constants for Registry.Histogram.
const (
	// Seconds exports nanosecond observations as seconds — the
	// Prometheus base unit for durations.
	Seconds = 1e-9
	// Units exports observations as-is (batch sizes, record counts).
	Units = 1.0
)

// Bucket layout: values 0..3 get exact buckets; above that each
// power-of-two range [2^(m-1), 2^m) splits into 4 linear sub-buckets
// of width 2^(m-3). That bounds the relative quantile error at 25%
// (bucket width / range floor) while covering the full uint64 domain
// in a fixed 252-slot array — no per-histogram configuration, and
// snapshots from different shards or nodes merge by plain addition.
const (
	histBuckets = 4 + 4*62 // 0..3 exact, then 4 sub-buckets per power of two up to 2^64
	histShards  = 4        // power of two; Observe picks one with the cheap RNG
)

// bucketIndex maps a value to its bucket. Inverse of bucketBounds.
func bucketIndex(v uint64) int {
	if v < 4 {
		return int(v)
	}
	m := uint(bits.Len64(v)) // v in [2^(m-1), 2^m), m >= 3
	sub := (v >> (m - 3)) & 3
	return 4*(int(m)-2) + int(sub)
}

// bucketBounds returns the inclusive [lo, hi] range of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i < 4 {
		return uint64(i), uint64(i)
	}
	m := uint(i/4 + 2)
	sub := uint64(i % 4)
	step := uint64(1) << (m - 3)
	lo = uint64(1)<<(m-1) + sub*step
	return lo, lo + step - 1
}

// histShard is one stripe of a histogram. Each shard is its own cache
// region (2KB of buckets), so concurrent recorders spread across
// shards rarely contend on a line.
type histShard struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Histogram is a sharded, log-bucketed histogram of non-negative
// integer observations (typically nanoseconds). A nil Histogram is a
// no-op. Construct through Registry.Histogram.
type Histogram struct {
	scale  float64
	shards [histShards]histShard
	// ex is the most recent traced observation, linking the
	// distribution to a concrete trace in the flight recorder.
	ex atomic.Pointer[Exemplar]
}

// Exemplar ties one observation to a trace ID. The exposition
// appends it to the histogram's _count line in OpenMetrics exemplar
// syntax, so a bad latency distribution links to a concrete trace.
type Exemplar struct {
	// Value is the observation in the exported unit (e.g. seconds).
	Value float64
	// TraceID is the 32-hex-digit trace reference.
	TraceID string
}

func newHistogram(scale float64) *Histogram {
	if scale == 0 {
		scale = Units
	}
	return &Histogram{scale: scale}
}

// Observe records one value. Negative values clamp to zero. Zero
// allocations, three atomic adds, no locks.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	var u uint64
	if v > 0 {
		u = uint64(v)
	}
	sh := &h.shards[stripeIdx(histShards-1)]
	sh.buckets[bucketIndex(u)].Add(1)
	sh.count.Add(1)
	sh.sum.Add(u)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveExemplar records one value and remembers it as the
// histogram's current exemplar under traceID. Only traced
// observations pay the pointer swap (and its allocation) — the
// untraced hot path keeps calling Observe.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	var u uint64
	if v > 0 {
		u = uint64(v)
	}
	h.ex.Store(&Exemplar{Value: float64(u) * h.scale, TraceID: traceID})
}

// LastExemplar returns the most recent traced observation, if any.
func (h *Histogram) LastExemplar() (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	if e := h.ex.Load(); e != nil {
		return *e, true
	}
	return Exemplar{}, false
}

// ObserveSince records the nanoseconds elapsed since start. A zero
// start is ignored — callers stamp opportunistically and this guard
// keeps unstamped events out of the distribution.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets.
// Snapshots merge by addition: across shards (Snapshot already does
// that), across histograms, or across nodes.
type HistogramSnapshot struct {
	Scale   float64
	Count   uint64
	Sum     uint64 // raw units (pre-scale)
	Buckets [histBuckets]uint64
}

// Snapshot merges the shard stripes into one snapshot. Concurrent
// Observe calls may land between stripe reads; the snapshot is a
// consistent-enough moment view, same as any scrape.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		s.Scale = Units
		return s
	}
	s.Scale = h.scale
	for i := range h.shards {
		sh := &h.shards[i]
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		for b := range sh.buckets {
			s.Buckets[b] += sh.buckets[b].Load()
		}
	}
	return s
}

// Merge adds o into s. Scales must match (they do for snapshots of
// the same metric, which is the only sensible merge).
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// SumScaled is the sum of observations in the exported unit.
func (s *HistogramSnapshot) SumScaled() float64 {
	return float64(s.Sum) * s.Scale
}

// Quantile estimates the q-quantile (0 < q <= 1) in the exported
// unit, interpolating linearly inside the landing bucket — accurate
// to the bucket's 25% relative width. Returns 0 for an empty
// snapshot so JSON surfaces never see NaN; the Prometheus encoder
// emits NaN for empty summaries itself.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if cum+float64(n) >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(n)
			v := float64(lo) + frac*float64(hi-lo)
			return v * s.Scale
		}
		cum += float64(n)
	}
	// Unreachable when counts are consistent; fall back to the top.
	lo, _ := bucketBounds(histBuckets - 1)
	return float64(lo) * s.Scale
}
