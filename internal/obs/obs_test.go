package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every probe value must land in a bucket whose bounds contain it,
	// and bucket indexes must be monotone in the value.
	probes := []uint64{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1000,
		1 << 20, (1 << 20) + 12345, 1 << 40, math.MaxUint64/2 + 1, math.MaxUint64}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		probes = append(probes, rng.Uint64())
	}
	prevIdx := -1
	sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
	for _, v := range probes {
		idx := bucketIndex(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, idx)
		}
		if idx < prevIdx {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, idx, prevIdx)
		}
		prevIdx = idx
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d bounds [%d, %d]", v, idx, lo, hi)
		}
	}
	// Bounds must tile the domain without gaps or overlaps.
	var next uint64
	for i := 0; i < histBuckets; i++ {
		lo, hi := bucketBounds(i)
		if lo != next {
			t.Fatalf("bucket %d starts at %d, want %d", i, lo, next)
		}
		if i < histBuckets-1 {
			next = hi + 1
		} else if hi != math.MaxUint64 {
			t.Fatalf("last bucket ends at %d, want MaxUint64", hi)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Known distributions: the estimated quantile must sit within the
	// bucket layout's 25% relative error of the true quantile.
	relErr := func(got, want float64) float64 {
		if want == 0 {
			return math.Abs(got)
		}
		return math.Abs(got-want) / want
	}

	t.Run("uniform", func(t *testing.T) {
		h := newHistogram(Units)
		const n = 1_000_000
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < n; i++ {
			h.Observe(int64(rng.Intn(n)) + 1)
		}
		s := h.Snapshot()
		for _, tc := range []struct{ q, want float64 }{
			{0.5, n / 2}, {0.99, 0.99 * n}, {0.999, 0.999 * n},
		} {
			got := s.Quantile(tc.q)
			if e := relErr(got, tc.want); e > 0.25 {
				t.Errorf("uniform p%g = %g, want ~%g (rel err %.3f)", tc.q*100, got, tc.want, e)
			}
		}
	})

	t.Run("constant", func(t *testing.T) {
		h := newHistogram(Units)
		for i := 0; i < 1000; i++ {
			h.Observe(5000)
		}
		s := h.Snapshot()
		for _, q := range []float64{0.5, 0.99, 0.999} {
			if got := s.Quantile(q); relErr(got, 5000) > 0.25 {
				t.Errorf("constant p%g = %g, want ~5000", q*100, got)
			}
		}
	})

	t.Run("bimodal", func(t *testing.T) {
		// 90% fast (1ms) / 10% slow (1s): p50 must report the fast
		// mode, p99 the slow one.
		h := newHistogram(Seconds)
		for i := 0; i < 9000; i++ {
			h.Observe(int64(time.Millisecond))
		}
		for i := 0; i < 1000; i++ {
			h.Observe(int64(time.Second))
		}
		s := h.Snapshot()
		if got := s.Quantile(0.5); relErr(got, 0.001) > 0.25 {
			t.Errorf("bimodal p50 = %g, want ~0.001", got)
		}
		if got := s.Quantile(0.99); relErr(got, 1.0) > 0.25 {
			t.Errorf("bimodal p99 = %g, want ~1.0", got)
		}
	})

	t.Run("empty", func(t *testing.T) {
		h := newHistogram(Seconds)
		s := h.Snapshot()
		if got := s.Quantile(0.5); got != 0 {
			t.Errorf("empty quantile = %g, want 0", got)
		}
	})
}

func TestHistogramSnapshotMerge(t *testing.T) {
	// Observing a stream split across two histograms and merging their
	// snapshots must equal observing the whole stream in one — the
	// property per-shard and per-node aggregation relies on.
	whole := newHistogram(Units)
	a, b := newHistogram(Units), newHistogram(Units)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100_000; i++ {
		v := int64(rng.Intn(1 << 30))
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	merged := a.Snapshot()
	bs := b.Snapshot()
	merged.Merge(&bs)
	want := whole.Snapshot()
	if merged.Count != want.Count || merged.Sum != want.Sum {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", merged.Count, merged.Sum, want.Count, want.Sum)
	}
	if merged.Buckets != want.Buckets {
		t.Fatal("merged buckets differ from whole-stream buckets")
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if m, w := merged.Quantile(q), want.Quantile(q); m != w {
			t.Errorf("p%g after merge = %g, want %g", q*100, m, w)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Hammer one counter, gauge and histogram from many goroutines;
	// totals must balance exactly. Run under -race this doubles as the
	// data-race check for the sharded structures.
	reg := NewRegistry()
	c := reg.Counter("locheat_test_ops_total", "ops")
	g := reg.Gauge("locheat_test_inflight", "inflight")
	h := reg.Histogram("locheat_test_latency_seconds", "latency", Seconds)

	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(rng.Intn(1_000_000)))
				g.Add(-1)
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() { // concurrent scrapes while recording
		for {
			select {
			case <-done:
				return
			default:
				var sb strings.Builder
				_ = reg.WritePrometheus(&sb)
			}
		}
	}()
	wg.Wait()
	close(done)

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if s := h.Snapshot(); s.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*perWorker)
	}
}

func TestHotPathZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("locheat_test_total", "t")
	g := reg.Gauge("locheat_test_gauge", "t")
	h := reg.Histogram("locheat_test_seconds", "t", Seconds)
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(42)
		h.Observe(12345)
		h.ObserveSince(time.Time{})
	}); n != 0 {
		t.Fatalf("hot-path record allocates %.1f per op, want 0", n)
	}
	// Nil handles (obs disabled) must also be alloc-free no-ops.
	var nc *Counter
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		nc.Add(1)
		nh.Observe(1)
	}); n != 0 {
		t.Fatalf("nil-handle record allocates %.1f per op, want 0", n)
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x_seconds", "", Seconds)
	reg.CounterFunc("y_total", "", func() uint64 { return 1 })
	reg.GaugeFunc("y", "", func() float64 { return 1 })
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(-1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if reg.Summaries() != nil {
		t.Fatal("nil registry summaries must be nil")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "help", "peer", "n2")
	b := reg.Counter("dup_total", "help", "peer", "n2")
	if a != b {
		t.Fatal("same name+labels must return the same counter handle")
	}
	other := reg.Counter("dup_total", "help", "peer", "n3")
	if a == other {
		t.Fatal("different labels must return a distinct handle")
	}
	// Func metrics refresh their closure on re-registration.
	v := uint64(1)
	reg.CounterFunc("fn_total", "", func() uint64 { return v })
	reg.CounterFunc("fn_total", "", func() uint64 { return 99 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fn_total 99") {
		t.Fatalf("re-registered func not refreshed:\n%s", sb.String())
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("locheat_stream_published_total", "events accepted into the pipeline").Add(12)
	reg.Counter("locheat_stream_processed_total", "events processed", "shard", "0").Add(7)
	reg.Counter("locheat_stream_processed_total", "events processed", "shard", "1").Add(5)
	reg.Gauge("locheat_stream_queue_depth", "queued events", "shard", "0").Set(3)
	reg.CounterFunc("locheat_journal_appended_total", "journal appends", func() uint64 { return 42 })
	reg.GaugeFunc("locheat_journal_segments", "segments on disk", func() float64 { return 2 })
	h := reg.Histogram("locheat_detection_latency_seconds",
		"ingest-to-alert latency", Seconds)
	for i := 0; i < 100; i++ {
		h.ObserveDuration(5 * time.Millisecond)
	}
	reg.Histogram("locheat_quarantine_propagation_seconds", "empty on purpose", Seconds)
	reg.Counter("odd_label_total", "escaping", "path", `a\b"c`+"\n")

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	if err := LintPrometheusText(text); err != nil {
		t.Fatalf("exposition lint: %v\noutput:\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE locheat_stream_published_total counter",
		"locheat_stream_published_total 12",
		`locheat_stream_processed_total{shard="0"} 7`,
		`locheat_stream_processed_total{shard="1"} 5`,
		"# TYPE locheat_detection_latency_seconds summary",
		`locheat_detection_latency_seconds{quantile="0.99"}`,
		"locheat_detection_latency_seconds_count 100",
		`locheat_quarantine_propagation_seconds{quantile="0.5"} NaN`,
		"locheat_journal_appended_total 42",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in exposition:\n%s", want, text)
		}
	}
	// Exactly one TYPE line per metric family.
	if n := strings.Count(text, "# TYPE locheat_stream_processed_total "); n != 1 {
		t.Errorf("processed_total has %d TYPE lines, want 1", n)
	}
}

func TestLintCatchesMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value\n",
		"1leading_digit 3\n",
		"ok{unterminated=\"x} 1\n",
		"# TYPE x wibble\nx 1\n",
		"a 1\nb 2\na 3\n",         // non-contiguous family
		"x 1\n# TYPE x counter\n", // TYPE after samples
	} {
		if err := LintPrometheusText(bad); err == nil {
			t.Errorf("lint accepted malformed input %q", bad)
		}
	}
	good := "# HELP a_total help text\n# TYPE a_total counter\na_total 5 1712000000\n"
	if err := LintPrometheusText(good); err != nil {
		t.Errorf("lint rejected valid input: %v", err)
	}
}

func TestSummaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("locheat_detection_latency_seconds", "", Seconds)
	for i := 0; i < 1000; i++ {
		h.ObserveDuration(2 * time.Millisecond)
	}
	s, ok := reg.Summaries()["locheat_detection_latency_seconds"]
	if !ok {
		t.Fatal("summary missing")
	}
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.P50 < 0.0015 || s.P50 > 0.0025 {
		t.Fatalf("p50 = %g, want ~0.002", s.P50)
	}
	if s.Sum < 1.9 || s.Sum > 2.1 {
		t.Fatalf("sum = %g, want ~2.0", s.Sum)
	}
}
