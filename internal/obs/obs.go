// Package obs is the daemon's dependency-free metrics core: sharded
// atomic counters and gauges, log-bucketed latency histograms with
// mergeable snapshots, and a registry that renders the whole set as
// Prometheus text exposition format.
//
// The design goal is that instrumentation can sit directly on the
// hot paths the codec tier opened up (500k+ ev/s forwarding, journal
// appends): every record call — Counter.Add, Gauge.Set,
// Histogram.Observe — is zero-alloc and lock-free, striped across
// padded atomics so concurrent shards don't bounce a cache line.
//
// Handles are nil-safe: calling Add/Set/Observe on a nil *Counter,
// *Gauge or *Histogram is a no-op. Tiers therefore instrument
// unconditionally and "observability off" is simply a nil *Registry —
// no branches or build tags on the hot path beyond the nil check the
// inliner folds away.
//
// For metrics the tiers already count (pipeline atomics, forwarder
// totals, journal stats) the registry supports read-through
// registration via CounterFunc/GaugeFunc: /metrics reads the very
// same atomics /alerts/stats reports, so the two surfaces cannot
// disagree and the hot path pays nothing it wasn't already paying.
package obs

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// stripes is the number of padded atomic cells a Counter spreads its
// increments across. Must be a power of two: the stripe pick is a
// single AND off the per-P cheap RNG.
const stripes = 8

type paddedUint64 struct {
	v atomic.Uint64
	_ [56]byte // pad to a cache line so stripes never share one
}

// stripeIdx picks a stripe with the runtime's per-P ChaCha8 generator
// (math/rand/v2 global functions): lock-free, alloc-free, a few ns.
// Distribution quality is irrelevant — any spreading defeats the
// cache-line ping-pong.
func stripeIdx(mask uint64) uint64 { return rand.Uint64() & mask }

// Counter is a monotonically increasing sharded counter. The zero
// value is ready to use; a nil Counter is a no-op.
type Counter struct {
	s [stripes]paddedUint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.s[stripeIdx(stripes-1)].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes. It is safe to call concurrently with Add;
// the result is a moment-in-time lower bound, like any counter read.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.s {
		total += c.s[i].v.Load()
	}
	return total
}

// Gauge is an instantaneous value that can go up and down. The zero
// value is ready to use; a nil Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		// Histograms export as precomputed-quantile summaries: the
		// 252-bucket layout would bloat the scrape, and the quantiles
		// are what the acceptance criteria and dashboards read.
		return "summary"
	}
}

// sameSeries reports whether two kinds may share a metric name in one
// exposition group (Prometheus requires a single TYPE per name).
func compatibleKinds(a, b metricKind) bool { return a.promType() == b.promType() }

type metric struct {
	name   string
	help   string
	labels string // pre-rendered `{k="v",...}` or ""
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	cfn     func() uint64
	gfn     func() float64
	hist    *Histogram
}

// series is the full sample identity: name + rendered labels.
func (m *metric) series() string { return m.name + m.labels }

// Registry holds a process's metrics. Registration (not recording) is
// the synchronized slow path; it is get-or-create, so re-registering
// the same name+labels returns the prior handle — tiers that rebuild
// on membership change (follower gauges, peer gauges) just register
// again. A nil *Registry returns nil handles, turning every record
// call downstream into a no-op.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byKey   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// renderLabels turns k,v pairs into a canonical `{k="v",...}` block.
// Pairs are sorted by key so the same label set always renders — and
// therefore dedupes — identically.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key,value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register is the shared get-or-create. make builds a fresh metric if
// the series is new; update (optional) refreshes an existing one —
// func metrics replace their closure so rebuilt tiers don't serve
// stale captures.
func (r *Registry) register(name, help string, kv []string, kind metricKind,
	make func() *metric, update func(*metric)) *metric {
	labels := renderLabels(kv)
	key := name + labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s re-registered as %v, was %v", key, kind, m.kind))
		}
		if update != nil {
			update(m)
		}
		return m
	}
	// A name shared across label sets must keep one exposition type.
	for _, m := range r.metrics {
		if m.name == name && !compatibleKinds(m.kind, kind) {
			panic(fmt.Sprintf("obs: %s registered as both %s and %s",
				name, m.kind.promType(), kind.promType()))
		}
	}
	m := make()
	m.name, m.help, m.labels, m.kind = name, help, labels, kind
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or finds) a counter. kv are label key,value
// pairs; keep values from small fixed sets (shard indexes, stage
// names, peer IDs) — never user IDs — so cardinality stays bounded.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kv, kindCounter, func() *metric {
		return &metric{counter: &Counter{}}
	}, nil)
	return m.counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kv, kindGauge, func() *metric {
		return &metric{gauge: &Gauge{}}
	}, nil)
	return m.gauge
}

// CounterFunc registers a read-through counter: the value is fn() at
// scrape time. Use it to expose totals a tier already counts in its
// own atomics, so /metrics and the tier's stats API literally read
// the same memory.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, kv ...string) {
	if r == nil {
		return
	}
	r.register(name, help, kv, kindCounterFunc, func() *metric {
		return &metric{cfn: fn}
	}, func(m *metric) { m.cfn = fn })
}

// GaugeFunc registers a read-through gauge sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, kv ...string) {
	if r == nil {
		return
	}
	r.register(name, help, kv, kindGaugeFunc, func() *metric {
		return &metric{gfn: fn}
	}, func(m *metric) { m.gfn = fn })
}

// Histogram registers (or finds) a histogram. scale converts the raw
// observed integers into the exported unit — pass obs.Seconds for
// durations observed in nanoseconds, obs.Units for plain quantities.
func (r *Registry) Histogram(name, help string, scale float64, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(name, help, kv, kindHistogram, func() *metric {
		return &metric{hist: newHistogram(scale)}
	}, nil)
	return m.hist
}

// Summary is a histogram digest for JSON surfaces (/alerts/stats):
// the same snapshot /metrics quantiles come from.
type Summary struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// SeriesDesc identifies one registered series for documentation and
// introspection: the exposition name, the Prometheus type it exports
// as, the rendered label block (may be ""), and the help string.
type SeriesDesc struct {
	Name   string
	Type   string
	Labels string
	Help   string
}

// Describe lists every registered series, sorted by name then labels.
// It is the introspection Summaries does not provide: counters and
// gauges too, with type and help — what cmd/metricsdoc renders into
// METRICS.md.
func (r *Registry) Describe() []SeriesDesc {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make([]SeriesDesc, 0, len(metrics))
	for _, m := range metrics {
		out = append(out, SeriesDesc{
			Name:   m.name,
			Type:   m.kind.promType(),
			Labels: m.labels,
			Help:   m.help,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// Summaries digests every registered histogram, keyed by series name
// (name plus rendered labels).
func (r *Registry) Summaries() map[string]Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make(map[string]Summary)
	for _, m := range metrics {
		if m.kind != kindHistogram {
			continue
		}
		s := m.hist.Snapshot()
		out[m.series()] = Summary{
			Count: s.Count,
			Sum:   s.SumScaled(),
			P50:   s.Quantile(0.5),
			P99:   s.Quantile(0.99),
			P999:  s.Quantile(0.999),
		}
	}
	return out
}
