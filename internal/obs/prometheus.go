package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Series are grouped by metric
// name with a single HELP/TYPE header per group, names sorted so
// scrapes are diffable. Histograms render as summaries: precomputed
// p50/p99/p999 quantile series plus _sum and _count — the fixed
// 252-bucket layout stays internal.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	// Group by name, preserving registration order within a group.
	sort.SliceStable(metrics, func(i, j int) bool { return metrics[i].name < metrics[j].name })

	bw := bufio.NewWriter(w)
	var prevName string
	for _, m := range metrics {
		if m.name != prevName {
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, escapeHelp(m.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind.promType())
			prevName = m.name
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s %d\n", m.series(), m.counter.Value())
		case kindCounterFunc:
			fmt.Fprintf(bw, "%s %d\n", m.series(), m.cfn())
		case kindGauge:
			fmt.Fprintf(bw, "%s %d\n", m.series(), m.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(bw, "%s %s\n", m.series(), formatFloat(m.gfn()))
		case kindHistogram:
			writeSummary(bw, m)
		}
	}
	return bw.Flush()
}

func writeSummary(w io.Writer, m *metric) {
	s := m.hist.Snapshot()
	for _, q := range [...]struct {
		q     float64
		label string
	}{{0.5, "0.5"}, {0.99, "0.99"}, {0.999, "0.999"}} {
		v := math.NaN() // Prometheus convention for an empty summary
		if s.Count > 0 {
			v = s.Quantile(q.q)
		}
		fmt.Fprintf(w, "%s %s\n", withLabel(m.name, m.labels, `quantile="`+q.label+`"`), formatFloat(v))
	}
	fmt.Fprintf(w, "%s %s\n", m.name+"_sum"+m.labels, formatFloat(s.SumScaled()))
	// The exemplar rides the _count line in OpenMetrics syntax
	// (`value # {trace_id="..."} exemplar-value`), linking the
	// distribution to one concrete retained trace.
	if e, ok := m.hist.LastExemplar(); ok {
		fmt.Fprintf(w, "%s %d # {trace_id=%q} %s\n",
			m.name+"_count"+m.labels, s.Count, e.TraceID, formatFloat(e.Value))
		return
	}
	fmt.Fprintf(w, "%s %d\n", m.name+"_count"+m.labels, s.Count)
}

// withLabel splices one extra label into a pre-rendered label block.
func withLabel(name, labels, extra string) string {
	if labels == "" {
		return name + "{" + extra + "}"
	}
	return name + labels[:len(labels)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// Handler serves GET /metrics from this registry. It carries no
// authentication — mount it on surfaces that are already operator-
// internal (the main listener next to /healthz, and the pprof
// listener).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		if err := r.WritePrometheus(w); err != nil {
			// Too late for a status code; the scraper sees a short body.
			return
		}
	})
}

// LintPrometheusText validates text in Prometheus exposition format:
// well-formed HELP/TYPE headers, known types, parseable sample lines,
// series grouped by metric name, and TYPE preceding its samples. It
// is the lint the exposition tests (and any scrape-smoke script) run
// against /metrics output.
func LintPrometheusText(text string) error {
	typeOf := make(map[string]string)
	seenSamples := make(map[string]bool) // metric name -> samples emitted
	closed := make(map[string]bool)      // name -> group ended (another name seen since)
	var lastName string

	lineNo := 0
	for _, line := range strings.Split(text, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			name := fields[2]
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE needs a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := typeOf[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if seenSamples[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				typeOf[name] = fields[3]
			}
			continue
		}
		name, err := lintSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := baseName(name, typeOf)
		if closed[base] {
			return fmt.Errorf("line %d: series of %s not contiguous", lineNo, base)
		}
		if lastName != "" && lastName != base {
			closed[lastName] = true
		}
		lastName = base
		seenSamples[base] = true
	}
	return nil
}

// baseName strips the _sum/_count suffix when the bare name has a
// summary or histogram TYPE, so grouping checks treat them as one
// family.
func baseName(name string, typeOf map[string]string) string {
	for _, suffix := range [...]string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t := typeOf[base]; t == "summary" || t == "histogram" {
				return base
			}
		}
	}
	return name
}

// lintSampleLine validates one sample and returns its metric name.
func lintSampleLine(line string) (string, error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i <= 0 {
		return "", fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:i]
	if !validMetricName(name) {
		return "", fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", fmt.Errorf("unterminated label block in %q", line)
		}
		if err := lintLabels(rest[1:end]); err != nil {
			return "", fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// An OpenMetrics exemplar (` # {labels} value`) may trail the
	// sample; validate and strip it before the value parse.
	if body, ex, ok := strings.Cut(rest, " # "); ok {
		if !strings.HasPrefix(ex, "{") {
			return "", fmt.Errorf("malformed exemplar %q", ex)
		}
		end := strings.Index(ex, "}")
		if end < 0 {
			return "", fmt.Errorf("unterminated exemplar labels in %q", line)
		}
		if err := lintLabels(ex[1:end]); err != nil {
			return "", fmt.Errorf("%w in exemplar of %q", err, line)
		}
		exFields := strings.Fields(ex[end+1:])
		if len(exFields) < 1 || len(exFields) > 2 {
			return "", fmt.Errorf("expected exemplar value [timestamp] in %q", line)
		}
		if _, err := strconv.ParseFloat(exFields[0], 64); err != nil {
			return "", fmt.Errorf("bad exemplar value %q", exFields[0])
		}
		rest = body
	}
	// Value, optionally followed by a timestamp.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("expected value [timestamp] in %q", line)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return "", fmt.Errorf("bad value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, nil
}

func lintLabels(block string) error {
	if block == "" {
		return nil
	}
	// Labels render as k="v" pairs; values may contain escaped quotes.
	rest := block
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label %q", rest)
		}
		if !validLabelName(rest[:eq]) {
			return fmt.Errorf("invalid label name %q", rest[:eq])
		}
		rest = rest[eq+1:]
		if len(rest) < 2 || rest[0] != '"' {
			return fmt.Errorf("label value must be quoted")
		}
		rest = rest[1:]
		for {
			q := strings.IndexByte(rest, '"')
			if q < 0 {
				return fmt.Errorf("unterminated label value")
			}
			// Count the backslashes before the quote: odd = escaped.
			bs := 0
			for q-bs-1 >= 0 && rest[q-bs-1] == '\\' {
				bs++
			}
			rest = rest[q+1:]
			if bs%2 == 0 {
				break
			}
		}
		rest = strings.TrimPrefix(rest, ",")
	}
	return nil
}

func validMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

func validLabelName(s string) bool {
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}
