package web

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

// seedService builds a small world: two users, one venue with a mayor,
// a special and recent visitors.
func seedService(t *testing.T) (*lbsn.Service, *simclock.Simulated, lbsn.UserID, lbsn.UserID, lbsn.VenueID) {
	t.Helper()
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	alice := svc.RegisterUser("Alice", "alice", "Lincoln")
	bob := svc.RegisterUser("Bob", "", "Albuquerque")
	loc, _ := geo.FindCity("Lincoln")
	v, err := svc.AddVenue("The Mill", "800 P St", "Lincoln",
		loc.Center, &lbsn.Special{Description: "Free refill for the mayor", MayorOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []lbsn.UserID{alice, bob} {
		if res, err := svc.CheckIn(lbsn.CheckinRequest{UserID: u, VenueID: v, Reported: loc.Center}); err != nil || !res.Accepted {
			t.Fatalf("seed check-in: %+v %v", res, err)
		}
		clock.Advance(2 * time.Hour)
	}
	return svc, clock, alice, bob, v
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestUserPageByIDAndUsername(t *testing.T) {
	svc, clock, alice, _, _ := seedService(t)
	ts := httptest.NewServer(NewServer(svc, clock))
	defer ts.Close()

	code, body := get(t, ts, fmt.Sprintf("/user/%d", alice))
	if code != http.StatusOK {
		t.Fatalf("GET /user/%d = %d", alice, code)
	}
	for _, want := range []string{"Alice", `class="home-city">Lincoln`, `class="stat-checkins">1<`} {
		if !strings.Contains(body, want) {
			t.Errorf("user page missing %q", want)
		}
	}
	// Username URL scheme resolves the same page.
	code, body2 := get(t, ts, "/user/alice")
	if code != http.StatusOK || !strings.Contains(body2, "Alice") {
		t.Errorf("username URL = %d", code)
	}
	// Mayorships and check-in history must NOT appear (§3.2: hidden).
	if strings.Contains(strings.ToLower(body), "mayor") {
		t.Error("user page leaks mayorship information")
	}
}

func TestUserPageNotFound(t *testing.T) {
	svc, clock, _, _, _ := seedService(t)
	ts := httptest.NewServer(NewServer(svc, clock))
	defer ts.Close()
	if code, _ := get(t, ts, "/user/9999"); code != http.StatusNotFound {
		t.Errorf("missing user = %d, want 404", code)
	}
	if code, _ := get(t, ts, "/user/nobody"); code != http.StatusNotFound {
		t.Errorf("missing username = %d, want 404", code)
	}
}

func TestVenuePageRendersAllFields(t *testing.T) {
	svc, clock, alice, bob, v := seedService(t)
	ts := httptest.NewServer(NewServer(svc, clock))
	defer ts.Close()

	code, body := get(t, ts, fmt.Sprintf("/venue/%d", v))
	if code != http.StatusOK {
		t.Fatalf("GET /venue/%d = %d", v, code)
	}
	for _, want := range []string{
		"The Mill", "800 P St",
		`class="geo-lat">40.8136`, `class="geo-lon">-96.7026`,
		`class="stat-checkins-here">2<`, `class="stat-unique-visitors">2<`,
		`class="special mayor-only"`, "Free refill",
		`class="whos-been-here"`,
		fmt.Sprintf(`href="/user/%d"`, bob), // recent visitor link
	} {
		if !strings.Contains(body, want) {
			t.Errorf("venue page missing %q", want)
		}
	}
	// Alice checked in first, so she is mayor; her link appears as mayor.
	if !strings.Contains(body, fmt.Sprintf(`class="mayor" href="/user/%d"`, alice)) {
		t.Error("venue page missing mayor link")
	}
}

func TestVenuePageWithoutWhosBeenHere(t *testing.T) {
	svc, clock, _, _, v := seedService(t)
	ts := httptest.NewServer(NewServer(svc, clock, WithoutWhosBeenHere()))
	defer ts.Close()
	_, body := get(t, ts, fmt.Sprintf("/venue/%d", v))
	if strings.Contains(body, "whos-been-here") {
		t.Error("Who's been here section should be removed")
	}
}

func TestIndexPage(t *testing.T) {
	svc, clock, _, _, _ := seedService(t)
	ts := httptest.NewServer(NewServer(svc, clock))
	defer ts.Close()
	code, body := get(t, ts, "/")
	if code != http.StatusOK || !strings.Contains(body, "2 users, 1 venues") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get(t, ts, "/nonsense"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestLoginWall(t *testing.T) {
	svc, clock, alice, _, v := seedService(t)
	ts := httptest.NewServer(NewServer(svc, clock, WithLoginWall()))
	defer ts.Close()

	if code, _ := get(t, ts, fmt.Sprintf("/user/%d", alice)); code != http.StatusForbidden {
		t.Fatalf("anonymous request = %d, want 403", code)
	}

	jar := &cookieClient{}
	// Bad login attempts.
	if code := jar.get(t, ts.URL+"/login?user=abc"); code != http.StatusBadRequest {
		t.Errorf("bad login = %d, want 400", code)
	}
	if code := jar.get(t, ts.URL+"/login?user=9999"); code != http.StatusNotFound {
		t.Errorf("unknown user login = %d, want 404", code)
	}
	// Real login, then pages work.
	if code := jar.get(t, ts.URL+fmt.Sprintf("/login?user=%d", alice)); code != http.StatusOK {
		t.Fatalf("login = %d", code)
	}
	if code := jar.get(t, ts.URL+fmt.Sprintf("/venue/%d", v)); code != http.StatusOK {
		t.Errorf("logged-in venue page = %d, want 200", code)
	}
}

// cookieClient is a minimal cookie-remembering HTTP client.
type cookieClient struct {
	cookies []*http.Cookie
}

func (c *cookieClient) get(t *testing.T, url string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ck := range c.cookies {
		req.AddCookie(ck)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	c.cookies = append(c.cookies, resp.Cookies()...)
	return resp.StatusCode
}

func TestRateLimitAndBlocking(t *testing.T) {
	svc, clock, alice, _, _ := seedService(t)
	// 5 requests/minute, blocked after 2 over-limit windows.
	ts := httptest.NewServer(NewServer(svc, clock, WithRateLimit(5, 2)))
	defer ts.Close()
	path := fmt.Sprintf("/user/%d", alice)

	for i := 0; i < 5; i++ {
		if code, _ := get(t, ts, path); code != http.StatusOK {
			t.Fatalf("request %d = %d, want 200", i, code)
		}
	}
	if code, _ := get(t, ts, path); code != http.StatusTooManyRequests {
		t.Fatalf("6th request = %d, want 429", code)
	}
	// New window: works again (strike 1 recorded).
	clock.Advance(2 * time.Minute)
	if code, _ := get(t, ts, path); code != http.StatusOK {
		t.Fatalf("after window reset = %d, want 200", code)
	}
	// Overflow again -> strike 2 -> blocked.
	for i := 0; i < 6; i++ {
		_, _ = get(t, ts, path)
	}
	clock.Advance(2 * time.Minute)
	if code, _ := get(t, ts, path); code != http.StatusForbidden {
		t.Errorf("after 2 strikes = %d, want 403 (blocked)", code)
	}
}

func TestHashedIDsKillEnumeration(t *testing.T) {
	svc, clock, alice, _, v := seedService(t)
	srv := NewServer(svc, clock, WithHashedIDs("pepper"))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Numeric enumeration dead.
	if code, _ := get(t, ts, fmt.Sprintf("/user/%d", alice)); code != http.StatusNotFound {
		t.Errorf("numeric user URL = %d, want 404 under hashed IDs", code)
	}
	if code, _ := get(t, ts, fmt.Sprintf("/venue/%d", v)); code != http.StatusNotFound {
		t.Errorf("numeric venue URL = %d, want 404 under hashed IDs", code)
	}
	// Hashed URLs work.
	code, body := get(t, ts, "/user/h/"+srv.UserHash(alice))
	if code != http.StatusOK || !strings.Contains(body, "Alice") {
		t.Errorf("hashed user URL = %d", code)
	}
	code, body = get(t, ts, "/venue/h/"+srv.VenueHash(v))
	if code != http.StatusOK || !strings.Contains(body, "The Mill") {
		t.Errorf("hashed venue URL = %d", code)
	}
	// Visitor links on the venue page are hashed, not numeric.
	if strings.Contains(body, `href="/user/1"`) {
		t.Error("venue page leaks numeric user links under hashed IDs")
	}
	if !strings.Contains(body, `href="/user/h/`) {
		t.Error("venue page missing hashed visitor links")
	}
	// Unknown hash 404s.
	if code, _ := get(t, ts, "/user/h/ffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown hash = %d, want 404", code)
	}
}

func TestStatsCounters(t *testing.T) {
	svc, clock, alice, _, _ := seedService(t)
	srv := NewServer(svc, clock, WithRateLimit(2, 99))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	path := fmt.Sprintf("/user/%d", alice)
	for i := 0; i < 4; i++ {
		_, _ = get(t, ts, path)
	}
	served, rejected := srv.Stats()
	if served != 2 || rejected != 2 {
		t.Errorf("stats = %d served / %d rejected, want 2/2", served, rejected)
	}
}

func TestClientIPFromForwardedHeader(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/user/1", nil)
	r.Header.Set("X-Forwarded-For", "10.1.2.3, 192.168.0.1")
	if got := clientIP(r); got != "10.1.2.3" {
		t.Errorf("clientIP = %q, want 10.1.2.3", got)
	}
	r2 := httptest.NewRequest(http.MethodGet, "/user/1", nil)
	r2.RemoteAddr = "172.16.0.9:4242"
	if got := clientIP(r2); got != "172.16.0.9" {
		t.Errorf("clientIP = %q, want 172.16.0.9", got)
	}
}

func TestProfileHashDeterministicAndSalted(t *testing.T) {
	a := profileHash("s1", "user", 42)
	b := profileHash("s1", "user", 42)
	c := profileHash("s2", "user", 42)
	d := profileHash("s1", "venue", 42)
	if a != b {
		t.Error("hash not deterministic")
	}
	if a == c {
		t.Error("hash ignores salt")
	}
	if a == d {
		t.Error("hash ignores kind")
	}
	if len(a) != 16 {
		t.Errorf("hash length = %d, want 16", len(a))
	}
}

func TestHashedVisitorIDsKeepPagesCrawlableButAnonymous(t *testing.T) {
	svc, clock, alice, _, v := seedService(t)
	srv := NewServer(svc, clock, WithHashedVisitorIDs("pepper"))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Numeric profile URLs still work — this defence only anonymizes
	// the links between pages.
	code, userBody := get(t, ts, fmt.Sprintf("/user/%d", alice))
	if code != http.StatusOK {
		t.Fatalf("numeric user URL = %d under hashed visitors", code)
	}
	// But the page no longer prints its own numeric ID.
	if strings.Contains(userBody, "data-uid") {
		t.Error("user page leaks numeric ID under hashed visitors")
	}
	// Venue pages render, with hashed visitor/mayor links.
	code, body := get(t, ts, fmt.Sprintf("/venue/%d", v))
	if code != http.StatusOK {
		t.Fatalf("venue page = %d", code)
	}
	if strings.Contains(body, `class="visitor" href="/user/1"`) ||
		strings.Contains(body, `class="visitor" href="/user/2"`) {
		t.Error("venue page leaks numeric visitor links")
	}
	if !strings.Contains(body, `href="/user/h/`) {
		t.Error("venue page missing hashed visitor links")
	}
	if !strings.Contains(body, `class="stat-checkins-here"`) {
		t.Error("venue stats should remain crawlable")
	}
}
