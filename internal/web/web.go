// Package web implements the service's public profile website — the
// crawling attack surface of §3.2. It serves user pages at both
// /user/<numeric-id> and /user/<username> (the two URL schemes the
// paper found; IDs are dense and enumerable, "a serious security
// weakness") and venue pages at /venue/<numeric-id> including the
// "Who's been here" recent-visitor section of Fig B.1.
//
// The same package carries the §5.2 mitigations as composable server
// options: a login wall, per-IP rate limiting with blocking, hashed
// (non-enumerable) profile URLs, and removal of the "Who's been here"
// section — so the anti-crawl experiment (E12) can switch each on
// independently.
package web

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"html/template"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

// Option configures a Server.
type Option func(*Server)

// WithLoginWall requires a session cookie (obtained from GET
// /login?user=<id>) before profile pages are served; anonymous
// requests get 403. §5.2: "If a user must login to view the publicly
// available profile pages, it's easier to detect the crawling users
// and block them."
func WithLoginWall() Option {
	return func(s *Server) { s.requireLogin = true }
}

// WithRateLimit caps per-IP page requests in a sliding one-minute
// window; exceeding the cap returns 429 and, after `strikes` windows
// over the cap, the IP is blocked outright (403). §5.2's "combined
// with IP address blocking".
func WithRateLimit(perMinute, strikes int) Option {
	return func(s *Server) {
		s.ratePerMinute = perMinute
		s.rateStrikes = strikes
	}
}

// WithHashedIDs replaces enumerable numeric profile URLs with salted
// hashes: /user/h/<16 hex> and /venue/h/<16 hex>. Numeric URLs return
// 404, killing the ID-sweep crawl. §5.2: "the service provider may use
// the hash function to hide necessary information (such as user IDs in
// the recent check-in list)."
func WithHashedIDs(salt string) Option {
	return func(s *Server) {
		s.hashIDs = true
		s.hashSalt = salt
	}
}

// WithoutWhosBeenHere removes the venue recent-visitor section — the
// change Foursquare itself shipped "right after we finished all the
// crawling" (§6.2.1).
func WithoutWhosBeenHere() Option {
	return func(s *Server) { s.hideVisitors = true }
}

// WithHashedVisitorIDs keeps profile pages fully crawlable but renders
// the "Who's been here" links (and the mayor link) as salted hashes —
// §5.2's targeted fix: "the service provider may use the hash function
// to hide necessary information (such as user IDs in the recent
// check-in list)" without hurting usability the way removing the list
// would.
func WithHashedVisitorIDs(salt string) Option {
	return func(s *Server) {
		s.hashVisitors = true
		s.hashSalt = salt
	}
}

// WithLatency adds a fixed wall-clock service delay to every profile
// page, emulating 2010 WAN round-trips so the crawler throughput
// experiment (E3) exhibits the paper's thread-scaling behaviour. Zero
// disables it.
func WithLatency(d time.Duration) Option {
	return func(s *Server) { s.latency = d }
}

// Server renders the profile website over an lbsn.Service.
type Server struct {
	svc   *lbsn.Service
	clock simclock.Clock
	mux   *http.ServeMux

	requireLogin  bool
	ratePerMinute int
	rateStrikes   int
	hashIDs       bool
	hashVisitors  bool
	hashSalt      string
	hideVisitors  bool
	latency       time.Duration

	mu       sync.Mutex
	sessions map[string]lbsn.UserID
	windows  map[string]*rateWindow
	blocked  map[string]bool
	// hashToUser/hashToVenue let hashed pages resolve; populated
	// lazily as hashes are minted.
	hashToUser  map[string]lbsn.UserID
	hashToVenue map[string]lbsn.VenueID

	served   int
	rejected int
}

type rateWindow struct {
	start   time.Time
	count   int
	strikes int
}

var _ http.Handler = (*Server)(nil)

// NewServer builds the website. A nil clock uses the wall clock.
func NewServer(svc *lbsn.Service, clock simclock.Clock, opts ...Option) *Server {
	if clock == nil {
		clock = simclock.Real{}
	}
	s := &Server{
		svc:         svc,
		clock:       clock,
		sessions:    make(map[string]lbsn.UserID),
		windows:     make(map[string]*rateWindow),
		blocked:     make(map[string]bool),
		hashToUser:  make(map[string]lbsn.UserID),
		hashToVenue: make(map[string]lbsn.VenueID),
	}
	for _, opt := range opts {
		opt(s)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/login", s.handleLogin)
	mux.HandleFunc("/user/", s.guard(s.handleUser))
	mux.HandleFunc("/venue/", s.guard(s.handleVenue))
	mux.HandleFunc("/", s.handleIndex)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stats reports pages served and requests rejected by defences.
func (s *Server) Stats() (served, rejected int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served, s.rejected
}

// BlockedIPs returns the currently blocked client IPs.
func (s *Server) BlockedIPs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.blocked))
	for ip := range s.blocked {
		out = append(out, ip)
	}
	return out
}

// UserHash mints the non-enumerable profile token for a user; the
// server also registers it so the hashed URL resolves. Links between
// pages use these tokens when WithHashedIDs is on.
func (s *Server) UserHash(id lbsn.UserID) string {
	h := profileHash(s.hashSalt, "user", uint64(id))
	s.mu.Lock()
	s.hashToUser[h] = id
	s.mu.Unlock()
	return h
}

// VenueHash mints the non-enumerable profile token for a venue.
func (s *Server) VenueHash(id lbsn.VenueID) string {
	h := profileHash(s.hashSalt, "venue", uint64(id))
	s.mu.Lock()
	s.hashToVenue[h] = id
	s.mu.Unlock()
	return h
}

func profileHash(salt, kind string, id uint64) string {
	sum := sha256.Sum256([]byte(salt + ":" + kind + ":" + strconv.FormatUint(id, 10)))
	return hex.EncodeToString(sum[:8])
}

// guard wraps a page handler with the §5.2 defences in order: IP
// blocklist, rate limit, login wall.
func (s *Server) guard(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.latency > 0 {
			time.Sleep(s.latency)
		}
		ip := clientIP(r)

		s.mu.Lock()
		if s.blocked[ip] {
			s.rejected++
			s.mu.Unlock()
			http.Error(w, "blocked", http.StatusForbidden)
			return
		}
		if s.ratePerMinute > 0 {
			win := s.windows[ip]
			now := s.clock.Now()
			if win == nil || now.Sub(win.start) >= time.Minute {
				strikes := 0
				if win != nil {
					strikes = win.strikes
				}
				win = &rateWindow{start: now, strikes: strikes}
				s.windows[ip] = win
			}
			win.count++
			if win.count > s.ratePerMinute {
				if win.count == s.ratePerMinute+1 {
					// First overflow in this window: one strike.
					win.strikes++
					if s.rateStrikes > 0 && win.strikes >= s.rateStrikes {
						s.blocked[ip] = true
					}
				}
				s.rejected++
				s.mu.Unlock()
				http.Error(w, "rate limited", http.StatusTooManyRequests)
				return
			}
		}
		s.mu.Unlock()

		if s.requireLogin && !s.loggedIn(r) {
			s.mu.Lock()
			s.rejected++
			s.mu.Unlock()
			http.Error(w, "login required", http.StatusForbidden)
			return
		}
		next(w, r)
	}
}

func (s *Server) loggedIn(r *http.Request) bool {
	c, err := r.Cookie("session")
	if err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.sessions[c.Value]
	return ok
}

func clientIP(r *http.Request) string {
	if fwd := r.Header.Get("X-Forwarded-For"); fwd != "" {
		parts := strings.Split(fwd, ",")
		return strings.TrimSpace(parts[0])
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// handleLogin issues a session cookie for an existing user ID:
// GET /login?user=42.
func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	idStr := r.URL.Query().Get("user")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		http.Error(w, "bad user", http.StatusBadRequest)
		return
	}
	if _, ok := s.svc.User(lbsn.UserID(id)); !ok {
		http.Error(w, "no such user", http.StatusNotFound)
		return
	}
	token := profileHash("session", idStr, id)
	s.mu.Lock()
	s.sessions[token] = lbsn.UserID(id)
	s.mu.Unlock()
	http.SetCookie(w, &http.Cookie{Name: "session", Value: token, Path: "/"})
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintf(w, "<html><body><h1>locheat LBSN</h1><p>%d users, %d venues</p></body></html>",
		s.svc.UserCount(), s.svc.VenueCount())
}

// handleUser serves /user/<id>, /user/<username>, /user/h/<hash>.
func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/user/")
	var (
		view lbsn.UserView
		ok   bool
	)
	switch {
	case strings.HasPrefix(rest, "h/"):
		s.mu.Lock()
		id, found := s.hashToUser[strings.TrimPrefix(rest, "h/")]
		s.mu.Unlock()
		if found {
			view, ok = s.svc.User(id)
		}
	case s.hashIDs:
		// Numeric and username URLs are disabled under hashed IDs.
		ok = false
	default:
		if id, err := strconv.ParseUint(rest, 10, 64); err == nil {
			view, ok = s.svc.User(lbsn.UserID(id))
		} else {
			view, ok = s.svc.UserByUsername(rest)
		}
	}
	if !ok {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	page := userPage{UserView: view, ShowID: !s.hashIDs && !s.hashVisitors}
	if err := userTmpl.Execute(w, page); err != nil {
		http.Error(w, "render error", http.StatusInternalServerError)
	}
}

// userPage is the template payload for user profiles; ShowID controls
// whether the enumerable numeric ID appears in the markup (hidden
// under the §5.2 hashing defences).
type userPage struct {
	lbsn.UserView
	ShowID bool
}

// venuePage is the template payload for venue profiles.
type venuePage struct {
	lbsn.VenueView
	MayorLink    string
	VisitorLinks []string
	ShowVisitors bool
}

// handleVenue serves /venue/<id> and /venue/h/<hash>.
func (s *Server) handleVenue(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/venue/")
	var (
		view lbsn.VenueView
		ok   bool
	)
	switch {
	case strings.HasPrefix(rest, "h/"):
		s.mu.Lock()
		id, found := s.hashToVenue[strings.TrimPrefix(rest, "h/")]
		s.mu.Unlock()
		if found {
			view, ok = s.svc.Venue(id)
		}
	case s.hashIDs:
		ok = false
	default:
		if id, err := strconv.ParseUint(rest, 10, 64); err == nil {
			view, ok = s.svc.Venue(lbsn.VenueID(id))
		}
	}
	if !ok {
		http.NotFound(w, r)
		return
	}
	page := venuePage{VenueView: view, ShowVisitors: !s.hideVisitors}
	if view.MayorID != 0 {
		page.MayorLink = s.userLink(view.MayorID)
	}
	if page.ShowVisitors {
		for _, uid := range view.RecentVisitors {
			page.VisitorLinks = append(page.VisitorLinks, s.userLink(uid))
		}
	}
	s.mu.Lock()
	s.served++
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := venueTmpl.Execute(w, page); err != nil {
		http.Error(w, "render error", http.StatusInternalServerError)
	}
}

func (s *Server) userLink(id lbsn.UserID) string {
	if s.hashIDs || s.hashVisitors {
		return "/user/h/" + s.UserHash(id)
	}
	return fmt.Sprintf("/user/%d", id)
}

var userTmpl = template.Must(template.New("user").Parse(`<!DOCTYPE html>
<html><head><title>{{.Name}} on locheat</title></head>
<body>
<div class="profile user-profile"{{if .ShowID}} data-uid="{{.ID}}"{{end}}>
  <h1 class="user-name">{{.Name}}</h1>
  {{if .Username}}<span class="user-username">{{.Username}}</span>{{end}}
  <span class="home-city">{{.HomeCity}}</span>
  <ul class="stats">
    <li>Check-ins: <span class="stat-checkins">{{.TotalCheckins}}</span></li>
    <li>Badges: <span class="stat-badges">{{.TotalBadges}}</span></li>
    <li>Points: <span class="stat-points">{{.Points}}</span></li>
    <li>Friends: <span class="stat-friends">{{.FriendCount}}</span></li>
  </ul>
</div>
</body></html>
`))

var venueTmpl = template.Must(template.New("venue").Parse(`<!DOCTYPE html>
<html><head><title>{{.Name}} on locheat</title></head>
<body>
<div class="profile venue-profile" data-vid="{{.ID}}">
  <h1 class="venue-name">{{.Name}}</h1>
  <span class="venue-address">{{.Address}}</span>
  <span class="venue-city">{{.City}}</span>
  <span class="geo-lat">{{printf "%.6f" .Location.Lat}}</span>
  <span class="geo-lon">{{printf "%.6f" .Location.Lon}}</span>
  <ul class="stats">
    <li>Check-ins here: <span class="stat-checkins-here">{{.CheckinsHere}}</span></li>
    <li>Unique visitors: <span class="stat-unique-visitors">{{.UniqueVisitors}}</span></li>
  </ul>
  {{if .MayorLink}}<a class="mayor" href="{{.MayorLink}}">Mayor</a>{{end}}
  {{if .Special}}<div class="special{{if .Special.MayorOnly}} mayor-only{{end}}">{{.Special.Description}}</div>{{end}}
  {{if .ShowVisitors}}<div class="whos-been-here"><h2>Who's been here</h2><ul>
  {{range .VisitorLinks}}<li><a class="visitor" href="{{.}}">visitor</a></li>
  {{end}}</ul></div>{{end}}
</div>
</body></html>
`))
