package locheat_test

import (
	"context"
	"testing"
	"time"

	"locheat/internal/analysis"
	"locheat/internal/attack"
	"locheat/internal/core"
	"locheat/internal/crawler"
	"locheat/internal/device"
	"locheat/internal/lbsn"
	"locheat/internal/store"
)

// TestEndToEndAttackPipeline exercises the paper's full kill chain in
// one flow: crawl the website for intelligence, pick targets by
// profile analysis, execute a paced spoofed-GPS campaign, win the
// rewards — then turn around and catch the attacker with the chapter-4
// analytics.
func TestEndToEndAttackPipeline(t *testing.T) {
	lab, err := core.NewLab(core.LabConfig{Scale: 0.05, Seed: 1234}) // 1000 users / 3000 venues
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1 — intelligence: crawl everything over real HTTP.
	baseURL, shutdown, err := lab.ServeLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	db := store.New()
	uc := crawler.New(crawler.Config{BaseURL: baseURL, Workers: 14}, db)
	if _, err := uc.Crawl(context.Background(), crawler.ModeUsers, 1, uint64(lab.Service.UserCount())); err != nil {
		t.Fatal(err)
	}
	vc := crawler.New(crawler.Config{BaseURL: baseURL, Workers: 5}, db)
	if _, err := vc.Crawl(context.Background(), crawler.ModeVenues, 1, uint64(lab.Service.VenueCount())); err != nil {
		t.Fatal(err)
	}
	db.DeriveStats()
	users, venues, relations := db.Counts()
	if users != lab.Service.UserCount() || venues != lab.Service.VenueCount() {
		t.Fatalf("crawl incomplete: %d/%d users, %d/%d venues",
			users, lab.Service.UserCount(), venues, lab.Service.VenueCount())
	}
	if relations == 0 {
		t.Fatal("no recent-check-in relations crawled")
	}

	// Phase 2 — target selection: orphan specials are free mayorships.
	targets := attack.OrphanSpecials(db)
	if len(targets) == 0 {
		t.Fatal("no orphan-special targets; world too small")
	}
	if len(targets) > 5 {
		targets = targets[:5]
	}
	views := attack.TargetsToVenueViews(lab.Service, targets)
	if len(views) != len(targets) {
		t.Fatalf("resolved %d of %d targets", len(views), len(targets))
	}

	// Phase 3 — execution: a paced campaign wins every mayorship and
	// unlocks the specials without tripping the cheater code.
	attacker := lab.Service.RegisterUser("Pipeline Attacker", "", "Lincoln")
	cheater := attack.NewCheater(lab.Service, attacker, lab.Clock)
	reports, held, err := cheater.MayorshipCampaign(attack.DefaultPlannerConfig(), views, 2)
	if err != nil {
		t.Fatal(err)
	}
	for day, rep := range reports {
		if rep.Denied != 0 {
			t.Errorf("campaign day %d had %d denials", day, rep.Denied)
		}
	}
	if held != len(views) {
		t.Errorf("attacker holds %d of %d target mayorships", held, len(views))
	}
	gotSpecial := false
	for _, rep := range reports {
		if len(rep.Specials) > 0 {
			gotSpecial = true
		}
	}
	if !gotSpecial {
		t.Error("campaign never unlocked a mayor-only special")
	}

	// Phase 4 — detection: a re-crawl of the attacker's profile plus
	// the venue lists now carries their tracks; the classifier flags
	// ground-truth cheaters from the synthetic world.
	suspects := analysis.Classify(db, analysis.DefaultClassifierConfig())
	conf := analysis.Evaluate(suspects, lab.Service.UserCount(), func(id uint64) bool {
		c, ok := lab.World.TrueClass(lbsn.UserID(id))
		return ok && c.Cheating()
	})
	if conf.Recall() < 0.7 {
		t.Errorf("classifier recall over crawled data = %.2f", conf.Recall())
	}
}

// TestEndToEndSpoofVsHardenedService verifies the defence story: the
// same attack rig that beats the default service is stopped when the
// venue deploys Wi-Fi verification semantics (modelled by a strict GPS
// radius — the device's true position would have to be at the venue).
func TestEndToEndSpoofVsHonestDevice(t *testing.T) {
	lab, err := core.NewLab(core.LabConfig{Scale: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := lab.Service.Venue(1)
	if !ok {
		t.Fatal("venue 1 missing")
	}
	u := lab.Service.RegisterUser("E2E", "", "Lincoln")

	// Honest hardware 1000+ km away: rejected.
	honest := device.NewClient(lab.Service, u, device.NewHardwareGPS(v.Location.Destination(90, 1.5e6)))
	res, err := honest.CheckIn(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("honest remote device accepted")
	}
	// Spoofed device: accepted.
	fake := device.NewFakeGPS()
	fake.Set(v.Location)
	spoofed := device.NewClient(lab.Service, u, fake)
	lab.Clock.Advance(48 * time.Hour) // outrun the speed rule
	res, err = spoofed.CheckIn(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("spoofed check-in denied: %s %s", res.Reason, res.Detail)
	}
}

// TestExperimentSuiteSmoke runs every experiment runner once on a tiny
// lab — the cmd/experiments happy path as a test.
func TestExperimentSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke skipped in -short")
	}
	lab, err := core.NewLab(core.LabConfig{Scale: 0.15, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lab.RunE1(); err != nil {
		t.Errorf("E1: %v", err)
	}
	if _, err := lab.RunE2(); err != nil {
		t.Errorf("E2: %v", err)
	}
	if _, err := lab.RunE3([]int{4}, 100, 100); err != nil {
		t.Errorf("E3: %v", err)
	}
	if res := lab.RunE4(); res.Count == 0 {
		t.Error("E4 empty")
	}
	if _, err := lab.RunE5(); err != nil {
		t.Errorf("E5: %v", err)
	}
	if _, err := lab.RunE6(); err != nil {
		t.Errorf("E6: %v", err)
	}
	if res := lab.RunE7(); len(res.Curve) == 0 {
		t.Error("E7 empty")
	}
	if res := lab.RunE8(); len(res.Curve) == 0 {
		t.Error("E8 empty")
	}
	if m := lab.RunE9(); m.Users == 0 {
		t.Error("E9 empty")
	}
	if res := lab.RunE10(); res.Suspects == 0 {
		t.Error("E10 empty")
	}
	if res := lab.RunE11(); len(res.Trials) == 0 {
		t.Error("E11 empty")
	}
	if _, err := lab.RunE12(200); err != nil {
		t.Errorf("E12: %v", err)
	}
	if res := lab.RunE13(); res.Report.Exposed == 0 {
		t.Error("E13 empty")
	}
}
