module locheat

go 1.22
