// Defenses compares the three §5.1 location-verification techniques
// against attackers at increasing distances, reproduces the
// Wendy's-next-door false accept and its DD-WRT fix, and shows the
// §5.2 anti-crawl trade-off.
//
// Run with: go run ./examples/defenses
package main

import (
	"fmt"
	"log"
	"math/rand"

	"locheat/internal/defense"
	"locheat/internal/geo"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sf, _ := geo.FindCity("San Francisco")
	venue := sf.Center

	wifi := defense.NewWiFiVerification()
	wifi.RegisterRouter(venue, 100)
	verifiers := []defense.Verifier{
		&defense.DistanceBounding{Rng: rand.New(rand.NewSource(1))},
		defense.NewAddressMapping(),
		wifi,
	}

	distances := []float64{10, 50, 100, 1000, 20000, 2500000}
	results := defense.CompareAtDistances(verifiers, venue, distances)

	fmt.Printf("%-22s", "attacker distance (m)")
	for _, v := range verifiers {
		fmt.Printf("%-20s", v.Name())
	}
	fmt.Println()
	for _, d := range distances {
		fmt.Printf("%-22.0f", d)
		for _, v := range verifiers {
			for _, r := range results {
				if r.Verifier == v.Name() && r.AttackerMeters == d {
					if r.Accepted {
						fmt.Printf("%-20s", "ACCEPT")
					} else {
						fmt.Printf("%-20s", "reject")
					}
				}
			}
		}
		fmt.Println()
	}

	fmt.Println("\ncharacteristics (the paper's comparison):")
	for _, v := range verifiers {
		c := v.Characteristics()
		fmt.Printf("  %-20s accuracy ~%6.0f m   cost rank %d   %s\n",
			v.Name(), c.AccuracyMeters, c.CostRank, c.Deployability)
	}

	// The Wendy's case: a cheater inside the McDonald's 50 m away.
	fmt.Println("\nWendy's-next-door false accept (§5.1):")
	cheater := defense.Device{TrueLocation: venue.Destination(90, 50)}
	fmt.Printf("  100 m range: accepted=%v\n", wifi.Verify(venue, cheater).Accepted)
	restricted := defense.NewWiFiVerification()
	restricted.RegisterRouter(venue, 30) // DD-WRT power restriction
	fmt.Printf("   30 m range: accepted=%v (after DD-WRT restriction)\n",
		restricted.Verify(venue, cheater).Accepted)

	// Anti-crawl blocking collateral (§5.2).
	nat := defense.SimulateIPBlocking(10, 3, 0, 0)
	proxy := defense.SimulateIPBlocking(0, 0, 10, 300)
	fmt.Println("\nIP-blocking collateral damage (Casado & Freedman):")
	fmt.Printf("  blocking 10 NAT IPs:   %d crawlers stopped, %d legitimate users lost (%.0f per block)\n",
		nat.CrawlersBlocked, nat.LegitimateBlocked, nat.CollateralPerBlock)
	fmt.Printf("  blocking 10 proxy IPs: %d crawlers stopped, %d legitimate users lost (%.0f per block)\n",
		proxy.CrawlersBlocked, proxy.LegitimateBlocked, proxy.CollateralPerBlock)
	return nil
}
