// Mayorattack reproduces the paper's headline demonstration (Fig 3.2):
// from 2,500 km away, a spoofed device checks in at a San Francisco
// tourist spot once a day and takes the mayorship — and with it the
// mayor-only real-world reward — from a legitimate local.
//
// Run with: go run ./examples/mayorattack
package main

import (
	"fmt"
	"log"
	"time"

	"locheat/internal/device"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	sf, _ := geo.FindCity("San Francisco")

	wharf, err := svc.AddVenue("Fisherman's Wharf Sign", "Pier 39", "San Francisco",
		sf.Center, &lbsn.Special{Description: "Free coffee for the mayor", MayorOnly: true})
	if err != nil {
		return err
	}

	// A legitimate local establishes the mayorship over three days.
	local := svc.RegisterUser("Honest Harry", "", "San Francisco")
	for day := 1; day <= 3; day++ {
		if _, err := svc.CheckIn(lbsn.CheckinRequest{
			UserID: local, VenueID: wharf, Reported: sf.Center,
		}); err != nil {
			return err
		}
		clock.Advance(24 * time.Hour)
	}
	fmt.Printf("day 3: mayor is user %d (Honest Harry)\n", svc.Mayor(wharf))

	// The attacker, physically in Lincoln NE, uses the emulator vector.
	attacker := svc.RegisterUser("Mallory", "", "Lincoln")
	emu := device.NewEmulator()
	emu.RestoreFullImage()
	app, err := emu.InstallClient(svc, attacker)
	if err != nil {
		return err
	}
	emu.SetGeoFix(sf.Center) // Dalvik Debug Monitor "geo fix"

	for day := 1; day <= 5; day++ {
		res, err := app.CheckIn(wharf)
		if err != nil {
			return err
		}
		fmt.Printf("attack day %d: accepted=%v points=%d becameMayor=%v special=%q\n",
			day, res.Accepted, res.PointsEarned, res.BecameMayor, res.SpecialUnlocked)
		clock.Advance(24 * time.Hour)
		if res.BecameMayor {
			break
		}
	}

	if svc.Mayor(wharf) == attacker {
		fmt.Println("\nthe mayorship — and the free coffee — now belong to a user who has never been to San Francisco")
	}
	return nil
}
