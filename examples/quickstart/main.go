// Quickstart: stand up the simulated LBSN, register a user, check in
// honestly, then demonstrate the basic location-cheating attack — a
// spoofed check-in at a venue 2,500 km away that the service accepts.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"locheat/internal/device"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A simulated clock lets multi-hour scenarios run instantly.
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)

	// Two venues: one in Lincoln NE (where our user really is) and one
	// in San Francisco.
	lincoln, _ := geo.FindCity("Lincoln")
	sf, _ := geo.FindCity("San Francisco")
	mill, err := svc.AddVenue("The Mill", "800 P St", "Lincoln", lincoln.Center, nil)
	if err != nil {
		return err
	}
	wharf, err := svc.AddVenue("Fisherman's Wharf Sign", "Pier 39", "San Francisco",
		sf.Center, &lbsn.Special{Description: "Free chowder for the mayor", MayorOnly: true})
	if err != nil {
		return err
	}

	alice := svc.RegisterUser("Alice", "alice", "Lincoln")

	// Honest check-in: the phone's real GPS places Alice at the venue.
	phone := device.NewPhone(device.OSAndroid, device.NewHardwareGPS(lincoln.Center))
	app := device.NewClient(svc, alice, phone.GPS())
	res, err := app.CheckIn(mill)
	if err != nil {
		return err
	}
	fmt.Printf("honest check-in at The Mill: accepted=%v points=%d badges=%v\n",
		res.Accepted, res.PointsEarned, res.NewBadges)

	// Honest attempt at the distant venue: GPS verification rejects it.
	res, err = app.CheckIn(wharf)
	if err != nil {
		return err
	}
	fmt.Printf("honest check-in at the Wharf (2500 km away): accepted=%v reason=%s\n",
		res.Accepted, res.Reason)

	// A naive immediate spoof still fails: the cheater code's
	// super-human-speed rule knows Alice was just in Lincoln.
	emu := device.NewEmulator()
	emu.RestoreFullImage() // restore the app market (the paper's emulator hack)
	cheatApp, err := emu.InstallClient(svc, alice)
	if err != nil {
		return err
	}
	emu.SetGeoFix(sf.Center)
	res, err = cheatApp.CheckIn(wharf)
	if err != nil {
		return err
	}
	fmt.Printf("immediate spoofed check-in:     accepted=%v reason=%s (speed rule)\n",
		res.Accepted, res.Reason)

	// The attack (§3.1/§3.3): schedule around the rules. Two virtual
	// days later the same spoofed check-in sails through — the server
	// has no way to tell the fake GPS fix from a real flight to SF.
	clock.Advance(48 * time.Hour)
	res, err = cheatApp.CheckIn(wharf)
	if err != nil {
		return err
	}
	fmt.Printf("scheduled SPOOFED check-in:     accepted=%v points=%d mayor=%v special=%q\n",
		res.Accepted, res.PointsEarned, res.BecameMayor, res.SpecialUnlocked)

	total, denied, _ := svc.Stats()
	fmt.Printf("\nserver saw %d check-ins, denied %d — the scheduled spoof passed verification\n", total, denied)
	return nil
}
