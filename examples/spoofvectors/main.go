// Spoofvectors walks through all four §3.1 location-spoofing vectors
// against the same target venue, using the real machinery for each:
// a hooked Android location API, a simulated Bluetooth NMEA receiver
// on a closed-source phone, the developer JSON API over actual HTTP,
// and the hacked device emulator the paper used for its experiments.
//
// Run with: go run ./examples/spoofvectors
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"locheat/internal/api"
	"locheat/internal/device"
	"locheat/internal/geo"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	sf, _ := geo.FindCity("San Francisco")
	lincoln, _ := geo.FindCity("Lincoln")

	// Four distinct SF venues, one per vector, so no rule interferes.
	var venues []lbsn.VenueID
	for i := 0; i < 4; i++ {
		id, err := svc.AddVenue(fmt.Sprintf("SF Target #%d", i+1), "", "San Francisco",
			sf.Center.Destination(float64(i*90), 600+float64(i)*400), nil)
		if err != nil {
			return err
		}
		venues = append(venues, id)
	}
	attacker := svc.RegisterUser("Mallory", "", "Lincoln")
	pace := func() { clock.Advance(3 * time.Hour) }

	// Vector 1 — GPS API hook (open-source OS only).
	android := device.NewPhone(device.OSAndroid, device.NewHardwareGPS(lincoln.Center))
	fake := device.NewFakeGPS()
	target, _ := svc.Venue(venues[0])
	fake.Set(target.Location)
	if err := android.HookGPSAPI(fake); err != nil {
		return err
	}
	res, err := device.NewClient(svc, attacker, android.GPS()).CheckIn(venues[0])
	if err != nil {
		return err
	}
	fmt.Printf("1. GPS API hook (Android):        accepted=%v points=%d\n", res.Accepted, res.PointsEarned)
	pace()

	// Vector 2 — simulated Bluetooth GPS receiver speaking NMEA 0183,
	// paired to a CLOSED-source phone (iOS can't be API-hooked, §3.1).
	target, _ = svc.Venue(venues[1])
	recv, err := device.NewBluetoothRoute([]geo.Point{target.Location}, clock.Now(), time.Second)
	if err != nil {
		return err
	}
	iphone := device.NewPhone(device.OSIOS, device.NewHardwareGPS(lincoln.Center))
	iphone.PairExternalGPS(recv)
	res, err = device.NewClient(svc, attacker, iphone.GPS()).CheckIn(venues[1])
	if err != nil {
		return err
	}
	fmt.Printf("2. Bluetooth NMEA receiver (iOS): accepted=%v points=%d\n", res.Accepted, res.PointsEarned)
	pace()

	// Vector 3 — the developer API over real HTTP with an API key.
	apiSrv := api.NewServer(svc)
	apiSrv.IssueKey("dev-key-123")
	httpSrv, baseURL, err := serveLoopback(apiSrv)
	if err != nil {
		return err
	}
	defer httpSrv.Close()
	sdk := api.NewClient(baseURL, "dev-key-123")
	target, _ = svc.Venue(venues[2])
	apiRes, err := sdk.CheckIn(uint64(attacker), uint64(venues[2]), target.Location)
	if err != nil {
		return err
	}
	fmt.Printf("3. developer API over HTTP:       accepted=%v points=%d\n", apiRes.Accepted, apiRes.PointsEarned)
	pace()

	// Vector 4 — the hacked device emulator (the paper's method).
	emu := device.NewEmulator()
	emu.RestoreFullImage()
	app, err := emu.InstallClient(svc, attacker)
	if err != nil {
		return err
	}
	target, _ = svc.Venue(venues[3])
	emu.SetGeoFix(target.Location)
	res, err = app.CheckIn(venues[3])
	if err != nil {
		return err
	}
	fmt.Printf("4. device emulator (geo fix):     accepted=%v points=%d\n", res.Accepted, res.PointsEarned)

	uv, _ := svc.User(attacker)
	fmt.Printf("\nall four vectors indistinguishable server-side: %d accepted check-ins, %d points, %d badges\n",
		uv.TotalCheckins, uv.Points, uv.TotalBadges)
	return nil
}

// serveLoopback exposes a handler on 127.0.0.1 and returns a closer.
func serveLoopback(h http.Handler) (*http.Server, string, error) {
	ln, err := newLoopbackListener()
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return srv, "http://" + ln.Addr().String(), nil
}

func newLoopbackListener() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}
