// Crawlanalysis runs the full §3.2→§4 pipeline end to end: serve the
// profile website over real HTTP, crawl it with the multi-threaded
// ID-sweep crawler, derive the Fig 3.3 tables, and hunt for location
// cheaters with the three-factor classifier — scoring the result
// against the synthetic world's ground truth.
//
// Run with: go run ./examples/crawlanalysis
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"locheat/internal/analysis"
	"locheat/internal/core"
	"locheat/internal/crawler"
	"locheat/internal/lbsn"
	"locheat/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab, err := core.NewLab(core.LabConfig{Scale: 0.1, Seed: 99})
	if err != nil {
		return err
	}
	baseURL, shutdown, err := lab.ServeLocal()
	if err != nil {
		return err
	}
	defer func() {
		if err := shutdown(); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	fmt.Printf("profile site up at %s (%d users, %d venues)\n",
		baseURL, lab.Service.UserCount(), lab.Service.VenueCount())

	// Crawl users with 14 threads and venues with 5, as the paper did.
	db := store.New()
	users := crawler.New(crawler.Config{BaseURL: baseURL, Workers: 14}, db)
	uStats, err := users.Crawl(context.Background(), crawler.ModeUsers, 1, uint64(lab.Service.UserCount()))
	if err != nil {
		return err
	}
	fmt.Printf("user crawl:  %d pages in %s (%.0f pages/hour)\n",
		uStats.Fetched, uStats.Elapsed.Round(1e6), uStats.PagesPerHour())

	venues := crawler.New(crawler.Config{BaseURL: baseURL, Workers: 5}, db)
	vStats, err := venues.Crawl(context.Background(), crawler.ModeVenues, 1, uint64(lab.Service.VenueCount()))
	if err != nil {
		return err
	}
	fmt.Printf("venue crawl: %d pages in %s (%.0f pages/hour)\n",
		vStats.Fetched, vStats.Elapsed.Round(1e6), vStats.PagesPerHour())

	db.DeriveStats()
	u, v, r := db.Counts()
	fmt.Printf("tables: %d UserInfo, %d VenueInfo, %d RecentCheckins rows\n\n", u, v, r)

	// Detection.
	suspects := analysis.Classify(db, analysis.DefaultClassifierConfig())
	conf := analysis.Evaluate(suspects, lab.Service.UserCount(), func(id uint64) bool {
		c, ok := lab.World.TrueClass(lbsn.UserID(id))
		return ok && c.Cheating()
	})
	fmt.Printf("classifier: %d suspects — precision %.2f, recall %.2f vs ground truth\n\n",
		len(suspects), conf.Precision(), conf.Recall())

	fmt.Println("top suspects:")
	for i, s := range suspects {
		if i >= 10 {
			break
		}
		truth := "?"
		if c, ok := lab.World.TrueClass(lbsn.UserID(s.UserID)); ok {
			truth = c.String()
		}
		fmt.Printf("  user %-6d total %-6d recent %-5d badges %-3d cities %-3d [%s] truth=%s\n",
			s.UserID, s.Total, s.Recent, s.Badges, s.Cities, strings.Join(s.Flags, ","), truth)
	}
	return nil
}
