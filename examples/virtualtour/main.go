// Virtualtour reproduces Fig 3.5: the semiautomatic cheating tool
// plans a right-turning virtual walk through a city, picks the nearest
// venue to each target point, paces check-ins to stay inside the
// cheater-code envelope, and executes the whole tour with spoofed GPS
// — 25 check-ins, zero detections.
//
// Run with: go run ./examples/virtualtour
package main

import (
	"fmt"
	"log"
	"time"

	"locheat/internal/attack"
	"locheat/internal/core"
	"locheat/internal/plot"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lab, err := core.NewLab(core.LabConfig{Scale: 0.25, Seed: 7})
	if err != nil {
		return err
	}
	city, views := lab.DensestCityVenues()
	fmt.Printf("world: %d venues; touring %s (%d venues)\n",
		lab.Service.VenueCount(), city, len(views))

	// Start at the southwest corner, head north, keep turning right —
	// exactly the Fig 3.5 walk.
	start := views[0].Location
	for _, v := range views[1:] {
		if v.Location.Lat+v.Location.Lon < start.Lat+start.Lon {
			start = v.Location
		}
	}
	venues, targets, err := attack.PlanTour(lab.Service, start, attack.RightTurnTour(24, 450))
	if err != nil {
		return err
	}
	fmt.Printf("planned %d stops (%d intended target points)\n", len(venues), len(targets))

	schedule := attack.Plan(attack.DefaultPlannerConfig(), venues)
	user := lab.Service.RegisterUser("Tour Cheater", "", "Lincoln")
	report, err := attack.NewCheater(lab.Service, user, lab.Clock).Execute(schedule)
	if err != nil {
		return err
	}

	for i, s := range report.Stops {
		status := "ok"
		if !s.Result.Accepted {
			status = string(s.Result.Reason)
		}
		fmt.Printf("  stop %2d venue %-6d wait %-6s %s\n",
			i+1, s.Stop.Venue, s.Stop.Wait.Round(time.Second), status)
	}
	fmt.Printf("\n%d accepted / %d denied — paper: 25 check-ins, zero detections\n",
		report.Accepted, report.Denied)
	fmt.Printf("rewards: %d points, badges %v\n\n", report.Points, report.Badges)

	xys := make([]plot.XY, len(venues))
	for i, v := range venues {
		xys[i] = plot.XY{X: v.Location.Lon, Y: v.Location.Lat}
	}
	fmt.Println(plot.GeoScatter(xys, "Fig 3.5 — venues checked into along the virtual path"))
	return nil
}
