package main

import (
	"os"
	"path/filepath"
	"testing"

	"locheat/internal/store"
	"locheat/internal/synth"
)

func TestAnalyzeCLIEndToEnd(t *testing.T) {
	// Build a crawl export, then analyze it.
	w := synth.Generate(synth.Config{Seed: 13, Users: 800, Venues: 2400})
	db := store.New()
	w.FillStore(db)
	path := filepath.Join(t.TempDir(), "crawl.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExportJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"-in", path, "-suspects", "5"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestAnalyzeCLIMissingFile(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent/crawl.json"}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestAnalyzeCLIBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path}); err == nil {
		t.Error("broken JSON accepted")
	}
}

func TestAnalyzeCLIBadFlags(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
