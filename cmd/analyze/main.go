// Command analyze runs the chapter-4 detection analytics over a crawl
// export produced by cmd/crawl: the Fig 4.1/4.2 curves, the §4.2
// marginals, and the three-factor cheater classifier, printing the
// top suspects with their evidence.
//
// Usage:
//
//	analyze -in crawl.json [-suspects 20]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"locheat/internal/analysis"
	"locheat/internal/plot"
	"locheat/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	in := fs.String("in", "crawl.json", "crawl JSON from cmd/crawl")
	topN := fs.Int("suspects", 20, "suspects to print")
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	db := store.New()
	if err := db.ImportJSON(f); err != nil {
		return fmt.Errorf("import %s: %w", *in, err)
	}
	db.DeriveStats()

	m := analysis.ComputeMarginals(db)
	fmt.Printf("population: %d users, %d recent-check-in relations\n", m.Users, m.RecentRelations)
	fmt.Printf("  zero check-ins %.1f%%, 1-5 %.1f%%, >=1000 %.2f%%, >=5000: %d users (max %d)\n",
		100*m.ZeroFraction, 100*m.OneToFive, 100*m.AtLeast1000, m.AtLeast5000, m.MaxCheckins)
	fmt.Printf("  mayors: %d users over %d venues (%.2f avg)\n\n",
		m.UsersWithMayorships, m.VenuesWithMayors, m.AvgMayorships)

	fmt.Println(plot.Line(curveXY(analysis.RecentVsTotal(db, 2000, 100)), 50,
		"Fig 4.1 — avg recent check-ins vs total", "total", "avg recent"))
	fmt.Println(plot.Line(curveXY(analysis.BadgesVsTotal(db, 14000, 500)), 50,
		"Fig 4.2 — avg badges vs total", "total", "avg badges"))

	suspects := analysis.Classify(db, analysis.DefaultClassifierConfig())
	fmt.Printf("classifier flagged %d suspects; top %d:\n", len(suspects), *topN)
	fmt.Printf("  %-8s %-7s %-7s %-7s %-7s %-7s %s\n", "user", "total", "recent", "badges", "mayors", "cities", "flags")
	for i, s := range suspects {
		if i >= *topN {
			break
		}
		fmt.Printf("  %-8d %-7d %-7d %-7d %-7d %-7d %s\n",
			s.UserID, s.Total, s.Recent, s.Badges, s.TotalMayors, s.Cities, strings.Join(s.Flags, ","))
	}
	return nil
}

func curveXY(curve []analysis.CurvePoint) []plot.XY {
	out := make([]plot.XY, len(curve))
	for i, p := range curve {
		out[i] = plot.XY{X: float64(p.X), Y: p.AvgY}
	}
	return out
}
