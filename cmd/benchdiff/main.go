// Command benchdiff compares two benchjson snapshots (BENCH_*.json)
// and fails when a hot-path row regresses. Rows are matched by full
// benchmark name; throughput comes from the row's custom */sec metric
// (events/sec, alerts/sec — the rows the perf trajectory gates on) and
// falls back to ops/sec (1e9/nsPerOp) for rows without one, which are
// reported but never gate: micro-bench ns/op on shared runners is too
// noisy to fail a build over.
//
// -gate narrows the failing set further to rows matching a regexp.
// The reference box's I/O-bound rows (an fsync per record, an HTTP
// round trip per event) swing ±30% run to run — physics noise, not
// code — so the Makefile gates only the CPU/codec-bound rows where a
// 15% drop means a real regression; everything else still prints,
// marked (info).
//
// Usage:
//
//	go run ./cmd/benchdiff [-max-regress 15] [-gate REGEX] OLD.json NEW.json
//
// Exit status 1 when any gated row's throughput drops by more than
// -max-regress percent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// Result mirrors cmd/benchjson's per-row output.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"nsPerOp"`
	BytesPerOp float64            `json:"bytesPerOp"`
	AllocsOp   float64            `json:"allocsPerOp"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc mirrors cmd/benchjson's document.
type Doc struct {
	Benchmarks []Result `json:"benchmarks"`
}

// throughput returns the row's rate and whether it came from a */sec
// metric (the gated kind) rather than the ns/op fallback.
func throughput(r Result) (rate float64, gated bool) {
	for name, v := range r.Metrics {
		if len(name) > 4 && name[len(name)-4:] == "/sec" && v > 0 {
			return v, true
		}
	}
	if r.NsPerOp > 0 {
		return 1e9 / r.NsPerOp, false
	}
	return 0, false
}

func load(path string) (map[string]Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]Result, len(doc.Benchmarks))
	for _, r := range doc.Benchmarks {
		out[r.Name] = r
	}
	return out, nil
}

func main() {
	maxRegress := flag.Float64("max-regress", 15, "max allowed throughput drop, percent, on gated rows")
	gatePat := flag.String("gate", ".*", "regexp of benchmark names eligible to fail the diff")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress N] [-gate REGEX] OLD.json NEW.json")
		os.Exit(2)
	}
	gate, err := regexp.Compile(*gatePat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: bad -gate:", err)
		os.Exit(2)
	}
	oldRows, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRows, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(oldRows))
	for name := range oldRows {
		if _, ok := newRows[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no shared rows between the snapshots")
		os.Exit(2)
	}

	failed := 0
	fmt.Printf("%-60s %14s %14s %8s\n", "benchmark", "old", "new", "delta")
	for _, name := range names {
		or, nr := oldRows[name], newRows[name]
		oldRate, oldGated := throughput(or)
		newRate, newGated := throughput(nr)
		if oldRate == 0 || newRate == 0 {
			continue
		}
		delta := (newRate - oldRate) / oldRate * 100
		gated := oldGated && newGated && gate.MatchString(name)
		mark := ""
		if gated && delta < -*maxRegress {
			mark = "  REGRESSION"
			failed++
		} else if !gated {
			mark = "  (info)"
		}
		fmt.Printf("%-60s %14.0f %14.0f %+7.1f%%%s\n", name, oldRate, newRate, delta, mark)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d row(s) regressed more than %.0f%%\n", failed, *maxRegress)
		os.Exit(1)
	}
}
