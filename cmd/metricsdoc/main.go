// Command metricsdoc generates METRICS.md: a reference of every
// telemetry series a fully-enabled lbsnd registers — name, exposition
// type, label keys, help — straight from the obs registry, so the doc
// cannot drift from the code. Run from the repo root:
//
//	go run ./cmd/metricsdoc
//
// A unit test (main_test.go) regenerates the doc and fails when the
// committed METRICS.md is missing a registered series, so adding a
// metric without re-running this command breaks `go test ./...`.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"locheat/internal/backpressure"
	"locheat/internal/cluster"
	"locheat/internal/lbsn"
	"locheat/internal/obs"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/stream"
	"locheat/internal/trace"
)

func main() {
	out := flag.String("out", "METRICS.md", "output file")
	flag.Parse()
	doc, err := Generate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "metricsdoc:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "metricsdoc:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}

// Generate stands up one of everything that registers telemetry and
// renders the resulting registry. Deterministic: fixed node IDs, one
// shard, simulated clock — so regenerating on any machine yields the
// same bytes.
func Generate() (string, error) {
	dir, err := os.MkdirTemp("", "metricsdoc")
	if err != nil {
		return "", err
	}
	defer os.RemoveAll(dir)

	reg := obs.NewRegistry()
	clock := simclock.NewSimulated(simclock.Epoch())
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	svc.RegisterObs(reg)

	journal, err := store.OpenAlertJournal(store.JournalConfig{
		Dir: dir + "/journal", Obs: reg,
	})
	if err != nil {
		return "", err
	}
	defer journal.Close()

	tracer := trace.New(trace.Config{Node: "doc-a", SampleRate: 1, Obs: reg})
	pipe := stream.New(stream.Config{
		Shards: 1, Clock: clock, Store: journal, Obs: reg, Tracer: tracer,
	})
	defer pipe.Close()

	// Two static members with replication on: registers the forwarder,
	// membership (per-peer gauges), shipper, broadcaster and outbox
	// tiers. The peer address is never dialed — registration happens at
	// construction.
	peers := []cluster.Member{
		{ID: "doc-a", Addr: "http://doc-a.invalid"},
		{ID: "doc-b", Addr: "http://doc-b.invalid"},
	}
	node, err := cluster.NewNode(svc, pipe, cluster.Config{
		Self:    peers[0],
		Peers:   peers,
		Replica: cluster.ReplicaOptions{Dir: dir + "/replica", Factor: 2},
		Obs:     reg,
		Tracer:  tracer,
	})
	if err != nil {
		return "", err
	}
	defer node.Shutdown()

	// Admission controller (no background sampler) plus one breaker
	// probe: the per-peer state gauge only registers when a breaker is
	// first fetched for a peer, which the node above does lazily on its
	// first forward — never during doc generation.
	admission := backpressure.NewAdmission(backpressure.AdmissionConfig{
		Monitor: backpressure.NewMonitor(
			backpressure.Stage{Name: "stream", Sample: pipe.QueueSample},
		),
		Interval: -1,
		Clock:    clock,
		Obs:      reg,
	})
	defer admission.Close()
	backpressure.NewBreakerGroup("doc", backpressure.BreakerConfig{Clock: clock}, reg).For("doc-b")

	return render(reg), nil
}

// metricRow is one documented metric: every series sharing a name
// collapses into a row with the union of its label keys.
type metricRow struct {
	name, typ, help string
	labelKeys       []string
}

// labelKeys extracts the keys from a rendered `{k="v",...}` block.
func labelKeys(rendered string) []string {
	s := strings.TrimSuffix(strings.TrimPrefix(rendered, "{"), "}")
	var keys []string
	for len(s) > 0 {
		eq := strings.Index(s, `="`)
		if eq < 0 {
			break
		}
		keys = append(keys, s[:eq])
		// Skip the quoted value, honoring escapes.
		rest := s[eq+2:]
		i := 0
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		s = strings.TrimPrefix(rest[min(i+1, len(rest)):], ",")
	}
	return keys
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func render(reg *obs.Registry) string {
	rows := map[string]*metricRow{}
	var order []string
	for _, d := range reg.Describe() {
		row, ok := rows[d.Name]
		if !ok {
			row = &metricRow{name: d.Name, typ: d.Type, help: d.Help}
			rows[d.Name] = row
			order = append(order, d.Name)
		}
		for _, k := range labelKeys(d.Labels) {
			found := false
			for _, have := range row.labelKeys {
				if have == k {
					found = true
					break
				}
			}
			if !found {
				row.labelKeys = append(row.labelKeys, k)
			}
		}
	}
	sort.Strings(order)

	var b strings.Builder
	b.WriteString("# Metrics reference\n\n")
	b.WriteString("Every telemetry series a fully-enabled `lbsnd` registers (service,\n")
	b.WriteString("traced pipeline, journal, cluster tier with replication). Histograms\n")
	b.WriteString("export as precomputed-quantile summaries on `/metrics`; the\n")
	b.WriteString("detection-latency and ship-lag summaries also carry trace-ID\n")
	b.WriteString("exemplars linking a bad quantile to a concrete trace in\n")
	b.WriteString("`/api/v1/traces/{id}`.\n\n")
	b.WriteString("Generated by `go run ./cmd/metricsdoc` — do not edit by hand;\n")
	b.WriteString("`go test ./cmd/metricsdoc` fails if this file is stale.\n\n")
	b.WriteString("| Name | Type | Labels | Help |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, name := range order {
		row := rows[name]
		sort.Strings(row.labelKeys)
		labels := strings.Join(row.labelKeys, ", ")
		if labels == "" {
			labels = "—"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n",
			row.name, row.typ, labels, strings.ReplaceAll(row.help, "|", `\|`))
	}
	return b.String()
}
