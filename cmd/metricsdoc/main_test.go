package main

import (
	"os"
	"strings"
	"testing"
)

// TestMetricsDocCurrent regenerates the reference and fails when the
// committed METRICS.md is missing any registered series — the guard
// that makes `go run ./cmd/metricsdoc` part of adding a metric.
func TestMetricsDocCurrent(t *testing.T) {
	want, err := Generate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatalf("read METRICS.md: %v (run `go run ./cmd/metricsdoc` from the repo root)", err)
	}
	for _, line := range strings.Split(want, "\n") {
		if !strings.HasPrefix(line, "| `locheat_") {
			continue
		}
		name := strings.TrimPrefix(strings.SplitN(line, "`", 3)[1], "")
		if !strings.Contains(string(got), "| `"+name+"` |") {
			t.Errorf("METRICS.md is missing registered series %s — run `go run ./cmd/metricsdoc`", name)
		}
	}
	if string(got) != want {
		t.Error("METRICS.md is stale — run `go run ./cmd/metricsdoc` from the repo root")
	}
}
