// Command experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index E1–E12).
//
// Usage:
//
//	experiments [-run all|e1,...,e12,ablation] [-scale 1.0] [-seed 42]
//
// Scale 1.0 builds a 20,000-user / 60,000-venue world; the paper's
// population was roughly 95× larger. Shapes, ratios and the forced
// individuals (the 11 heavy users, the 865-mayorship user) are scale
// invariant.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"locheat/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runList := fs.String("run", "all", "comma-separated experiment ids (e1..e12, ablation) or 'all'")
	scale := fs.Float64("scale", 1.0, "world scale (1.0 = 20k users / 60k venues)")
	seed := fs.Int64("seed", 42, "world RNG seed")
	crawlPages := fs.Int("crawl-pages", 2000, "pages per crawl measurement (E3/E12)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := map[string]bool{}
	if *runList == "all" {
		for i := 1; i <= 14; i++ {
			want[fmt.Sprintf("e%d", i)] = true
		}
		want["ablation"] = true
	} else {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}

	fmt.Printf("== building lab (scale %.2f, seed %d)\n", *scale, *seed)
	lab, err := core.NewLab(core.LabConfig{Scale: *scale, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Printf("   world: %d users, %d venues\n\n", lab.Service.UserCount(), lab.Service.VenueCount())

	type step struct {
		id string
		fn func(*core.Lab) error
	}
	steps := []step{
		{"e1", printE1}, {"e2", printE2},
		{"e3", func(l *core.Lab) error { return printE3(l, *crawlPages) }},
		{"e4", printE4}, {"e5", printE5}, {"e6", printE6},
		{"e7", printE7}, {"e8", printE8}, {"e9", printE9},
		{"e10", printE10}, {"e11", printE11},
		{"e12", func(l *core.Lab) error { return printE12(l, *crawlPages) }},
		{"e13", printE13},
		{"e14", printE14},
		{"ablation", printAblation},
	}
	for _, s := range steps {
		if !want[s.id] {
			continue
		}
		if err := s.fn(lab); err != nil {
			return fmt.Errorf("%s: %w", s.id, err)
		}
	}
	return nil
}

func header(id, title string) {
	fmt.Printf("== %s — %s\n", strings.ToUpper(id), title)
}

func printE1(lab *core.Lab) error {
	header("e1", "GPS spoofing defeats location verification (Figs 3.1/3.2)")
	res, err := lab.RunE1()
	if err != nil {
		return err
	}
	for _, v := range res.Vectors {
		fmt.Printf("   vector %-16s accepted=%v points=%d\n", v.Method, v.Accepted, v.Points)
	}
	fmt.Printf("   Adventurer badge after %d distinct spoofed venues (paper: 10)\n", res.AdventurerAfterVenues)
	fmt.Printf("   mayorship taken after %d daily check-ins vs 3-day incumbent (paper: 4)\n\n", res.MayorAfterDays)
	return nil
}

func printE2(lab *core.Lab) error {
	header("e2", "cheater-code rule boundary map (§2.3)")
	probes, err := lab.RunE2()
	if err != nil {
		return err
	}
	for _, p := range probes {
		status := "MATCH"
		if !p.Pass() {
			status = "MISMATCH"
		}
		fmt.Printf("   %-18s %-45s denied=%-5v paper=%-5v %s\n", p.Rule, p.Scenario, p.Denied, p.WantDenied, status)
	}
	fmt.Println()
	return nil
}

func printE3(lab *core.Lab, pages int) error {
	header("e3", "multi-threaded crawler throughput (Fig 3.3, §3.2)")
	res, err := lab.RunE3([]int{1, 2, 4, 8, 16, 32}, pages, pages)
	if err != nil {
		return err
	}
	fmt.Printf("   %-8s %-10s %-12s %s\n", "workers", "pages", "elapsed", "pages/hour")
	for _, p := range res.UserSweep {
		fmt.Printf("   %-8d %-10d %-12s %.0f\n", p.Workers, p.Pages, p.Elapsed.Round(1e6), p.PagesPerHour)
	}
	fmt.Printf("   venues @5 workers: %d pages in %s = %.0f pages/hour\n",
		res.VenuePoint.Pages, res.VenuePoint.Elapsed.Round(1e6), res.VenuePoint.PagesPerHour)
	fmt.Printf("   stored: %d users, %d venues, %d recent-check-in relations\n\n",
		res.UsersStored, res.VenuesStored, res.Relations)
	return nil
}

func printE4(lab *core.Lab) error {
	header("e4", "Starbucks branches trace the US territory (Fig 3.4)")
	res := lab.RunE4()
	fmt.Printf("   query: %s\n", res.Query)
	fmt.Printf("   %d branches across %d metro areas, bounds lat [%.1f, %.1f] lon [%.1f, %.1f]\n",
		res.Count, res.Cities, res.Bounds.MinLat, res.Bounds.MaxLat, res.Bounds.MinLon, res.Bounds.MaxLon)
	fmt.Println(res.Plot)
	return nil
}

func printE5(lab *core.Lab) error {
	header("e5", "automated cheating along a virtual path (Fig 3.5, §3.3)")
	res, err := lab.RunE5()
	if err != nil {
		return err
	}
	fmt.Printf("   tour of %d venues through %s: %d accepted, %d denied, %d points, badges %v (paper: 25 stops, 0 detections)\n",
		res.Stops, res.City, res.Accepted, res.Denied, res.Points, res.Badges)
	fmt.Println(res.Plot)
	return nil
}

func printE6(lab *core.Lab) error {
	header("e6", "venue-profile analysis targets (§3.4)")
	res, err := lab.RunE6()
	if err != nil {
		return err
	}
	fmt.Printf("   orphan specials (special, no mayor): %d (paper: ~1000 at 5.6M venues)\n", res.OrphanSpecials)
	fmt.Printf("   open specials (no mayorship needed): %d\n", res.OpenSpecials)
	fmt.Printf("   weakly-held specials (<=5 visitors):  %d\n", res.WeaklyHeld)
	fmt.Printf("   most-mayored user: id=%d with %d mayorships on %d check-ins, %.0f%% of venues solo-visited (paper: 865 on 1265)\n",
		res.SuperMayorID, res.SuperMayorMayors, res.SuperMayorCheckins, 100*res.SuperMayorSoloShare)
	fmt.Printf("   mayorship-denial: victim %d, %d target venues, %d taken\n\n",
		res.DenialVictim, res.DenialTargets, res.DenialHeld)
	return nil
}

func printE7(lab *core.Lab) error {
	header("e7", "recent check-ins vs total check-ins (Fig 4.1)")
	res := lab.RunE7()
	fmt.Printf("   avg recent check-ins for users with >500 total: %.1f (paper: ~100)\n", res.Stat)
	fmt.Println(res.Plot)
	return nil
}

func printE8(lab *core.Lab) error {
	header("e8", "badges vs check-ins reward rate (Fig 4.2)")
	res := lab.RunE8()
	fmt.Printf("   users with >1000 check-ins and <10 badges: %.0f (paper: \"many\" — caught cheaters)\n", res.Stat)
	fmt.Println(res.Plot)
	return nil
}

func printE9(lab *core.Lab) error {
	header("e9", "population marginals (§4.2)")
	m := lab.RunE9()
	fmt.Printf("   users: %d, crawled check-in relations: %d\n", m.Users, m.RecentRelations)
	fmt.Printf("   zero check-ins: %.1f%% (paper 36.3%%)   1-5: %.1f%% (paper 20.4%%)   >=1000: %.2f%% (paper 0.2%%)\n",
		100*m.ZeroFraction, 100*m.OneToFive, 100*m.AtLeast1000)
	fmt.Printf("   users >=5000 check-ins: %d split %d with mayorships / %d without (paper: 11 = 6/5)\n",
		m.AtLeast5000, m.Group5000WithMayors, m.Group5000WithoutMayors)
	fmt.Printf("   max check-ins: %d (paper: >12000)\n", m.MaxCheckins)
	fmt.Printf("   users with mayorships: %d over %d mayored venues = %.2f avg (paper: 425,196 / 2,315,747 = 5.45)\n",
		m.UsersWithMayorships, m.VenuesWithMayors, m.AvgMayorships)
	fmt.Printf("   venues with exactly one visitor: %d   one check-in: %d\n", m.VenuesOneVisitor, m.VenuesOneCheckin)
	fmt.Printf("   specials: %d total, %d mayor-only (%.0f%%, paper >90%%), %d orphaned\n",
		m.TotalSpecials, m.MayorOnlySpecials,
		100*float64(m.MayorOnlySpecials)/float64(max(1, m.TotalSpecials)), m.OrphanSpecials)
	fmt.Printf("   usernames: %.1f%% (paper 26.1%%)\n\n", 100*m.UsernameFraction)
	return nil
}

func printE10(lab *core.Lab) error {
	header("e10", "suspicious check-in patterns + classifier (Figs 4.3/4.4)")
	res := lab.RunE10()
	fmt.Printf("   suspects flagged: %d   precision %.2f   recall %.2f   F1 %.2f\n",
		res.Suspects, res.Confusion.Precision(), res.Confusion.Recall(), res.Confusion.F1())
	fmt.Println(res.CheaterPlot)
	fmt.Println(res.NormalPlot)
	return nil
}

func printE11(lab *core.Lab) error {
	header("e11", "location verification techniques compared (§5.1)")
	res := lab.RunE11()
	names := make([]string, 0, len(res.Traits))
	for n := range res.Traits {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("   %-20s", "attacker distance")
	for _, n := range names {
		fmt.Printf(" %-18s", n)
	}
	fmt.Println()
	for _, d := range res.Distances {
		fmt.Printf("   %-20.0f", d)
		for _, n := range names {
			verdict := "?"
			for _, tr := range res.Trials {
				if tr.Verifier == n && tr.AttackerMeters == d {
					if tr.Accepted {
						verdict = "ACCEPT"
					} else {
						verdict = "reject"
					}
				}
			}
			fmt.Printf(" %-18s", verdict)
		}
		fmt.Println()
	}
	for _, n := range names {
		tr := res.Traits[n]
		fmt.Printf("   %-20s accuracy ~%.0f m, cost rank %d, deploy: %s\n",
			n, tr.AccuracyMeters, tr.CostRank, tr.Deployability)
	}
	fmt.Printf("   Wendy's-next-door: default 100 m range accepted=%v; after DD-WRT restriction accepted=%v\n",
		res.NextDoorDefaultAccepted, res.NextDoorRestrictedAccepted)
	fmt.Printf("   rapid-bit distance bounding: %d rounds -> theoretical false-accept %.2g; measured at 2 rounds: %.3f (theory 0.25)\n\n",
		res.RapidBitRounds, res.RapidBitTheoryFA, res.RapidBitMeasuredFA2Rd)
	return nil
}

func printE12(lab *core.Lab, pages int) error {
	header("e12", "anti-crawl mitigation (§5.2)")
	res, err := lab.RunE12(pages)
	if err != nil {
		return err
	}
	fmt.Printf("   %-28s %-8s %-8s %s\n", "defence", "parsed", "denied", "yield")
	for _, v := range res.Variants {
		fmt.Printf("   %-28s %-8d %-8d %.2f\n", v.Defence, v.Parsed, v.Denied, v.Yield)
	}
	fmt.Printf("   IP blocking collateral per blocked IP: NAT %.1f users vs proxy %.1f users (Casado & Freedman)\n\n",
		res.NATBlocking.CollateralPerBlock, res.ProxyBlocking.CollateralPerBlock)
	return nil
}

func printE13(lab *core.Lab) error {
	header("e13", "privacy leakage from venue recent-visitor lists (§6.2.1)")
	res := lab.RunE13()
	r := res.Report
	fmt.Printf("   exposed users: %d of %d (appear on at least one venue page)\n", r.Exposed, r.Users)
	fmt.Printf("   home city inferred correctly for %.0f%% of exposed users (median history %d venues)\n",
		100*r.MatchRate, r.MedianVenues)
	fmt.Printf("   example: user %d — %d crawled venues place them in %q (profile says %q)\n\n",
		res.SampleUser, res.SampleVenues, res.SampleInferred, res.SampleActual)
	return nil
}

func printE14(lab *core.Lab) error {
	header("e14", "differential crawling — behaviour from repeated snapshots (§3.2)")
	res, err := lab.RunE14(3, 150, 4)
	if err != nil {
		return err
	}
	fmt.Printf("   %d days of live traffic: %d accepted / %d denied check-ins\n",
		res.Days, res.TrafficAccepted, res.TrafficDenied)
	fmt.Printf("   diff: %d new recent-list appearances, %d mayorship changes, %d users with moved totals\n",
		res.NewRelations, res.MayorChanges, res.CheckinDeltas)
	fmt.Printf("   hyperactive users (>= 4 new venues/day): %d, of which %.0f%% are ground-truth cheaters\n\n",
		len(res.HyperactiveUsers), 100*res.CheaterHitRate)
	return nil
}

func printAblation(lab *core.Lab) error {
	header("ablation", "cheater-code speed threshold trade-off")
	rows := core.AblationSpeedThreshold([]float64{3, 5, 10, 15, 30, 60, 300})
	fmt.Printf("   %-12s %-16s %s\n", "limit (m/s)", "teleport caught", "city drive flagged (false positive)")
	for _, r := range rows {
		fmt.Printf("   %-12.0f %-16v %v\n", r.LimitMps, r.TeleportCaught, r.DriveFlagged)
	}
	fmt.Println()

	header("ablation", "classifier threshold sweep (precision/recall trade-off)")
	points := lab.SweepClassifierThresholds()
	fmt.Printf("   %-10s %-12s %-9s %-10s %-8s %s\n", "minCities", "recentRatio", "suspects", "precision", "recall", "F1")
	for _, p := range points {
		fmt.Printf("   %-10d %-12.2f %-9d %-10.2f %-8.2f %.2f\n",
			p.MinCities, p.RecentRatio, p.Suspects, p.Precision, p.Recall, p.F1)
	}
	fmt.Println()

	header("ablation", "single detection factor in isolation (§4 complementarity)")
	fmt.Printf("   %-26s %-9s %-10s %s\n", "factor", "suspects", "precision", "recall")
	for _, r := range lab.AblateDetectionFactors() {
		fmt.Printf("   %-26s %-9d %-10.2f %.2f\n", r.Factor, r.Suspects, r.Precision, r.Recall)
	}
	fmt.Println()
	return nil
}
