package main

import "testing"

// The CLI's run() is exercised directly on a tiny world: every printer
// must complete without error (output goes to stdout, which the test
// binary tolerates).
func TestRunSelectedExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke skipped in -short")
	}
	err := run([]string{"-run", "e1,e2,e9,e11,ablation", "-scale", "0.02", "-seed", "7"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCrawlExperimentsSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke skipped in -short")
	}
	err := run([]string{"-run", "e12", "-scale", "0.02", "-crawl-pages", "100"})
	if err != nil {
		t.Fatalf("run e12: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
