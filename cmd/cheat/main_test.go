package main

import "testing"

func TestCheatCLIPacedTour(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke skipped in -short")
	}
	if err := run([]string{"-users", "2000", "-seed", "3", "-stops", "10"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestCheatCLIRecklessStillCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke skipped in -short")
	}
	// Reckless mode trips the cheater code but the command reports it
	// rather than failing.
	if err := run([]string{"-users", "2000", "-seed", "3", "-stops", "8", "-reckless"}); err != nil {
		t.Fatalf("run -reckless: %v", err)
	}
}

func TestCheatCLIBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestCheatCLITooFewVenues(t *testing.T) {
	// A tiny world cannot host a long tour; the command must say so.
	if err := run([]string{"-users", "200", "-stops", "500"}); err == nil {
		t.Error("oversized tour accepted")
	}
}
