// Command cheat runs the semiautomatic location-cheating tool of §3.3
// against a freshly generated in-process world: it plans a Fig 3.5
// right-turning virtual tour through a city's venues, paces it to stay
// inside the cheater-code envelope, executes it with spoofed GPS, and
// prints the resulting path and rewards.
//
// Usage:
//
//	cheat [-users 5000] [-seed 42] [-stops 25] [-step 450] [-reckless]
//
// -reckless drops the pacing (zero waits) to demonstrate the cheater
// code catching a naive attacker.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"locheat/internal/attack"
	"locheat/internal/core"
	"locheat/internal/plot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cheat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cheat", flag.ContinueOnError)
	users := fs.Int("users", 5000, "synthetic world size")
	seed := fs.Int64("seed", 42, "world RNG seed")
	stops := fs.Int("stops", 25, "tour length (paper: 25)")
	step := fs.Float64("step", 450, "move distance per step in meters (paper: ~450-550)")
	reckless := fs.Bool("reckless", false, "skip pacing and trip the cheater code")
	if err := fs.Parse(args); err != nil {
		return err
	}

	lab, err := core.NewLab(core.LabConfig{Scale: float64(*users) / 20000, Seed: *seed})
	if err != nil {
		return err
	}
	city, views := lab.DensestCityVenues()
	if len(views) < *stops {
		return fmt.Errorf("city %q has only %d venues; raise -users", city, len(views))
	}
	fmt.Printf("touring %s (%d venues available)\n", city, len(views))

	start := views[0].Location
	for _, v := range views[1:] {
		if v.Location.Lat+v.Location.Lon < start.Lat+start.Lon {
			start = v.Location
		}
	}
	venues, _, err := attack.PlanTour(lab.Service, start, attack.RightTurnTour(*stops-1, *step))
	if err != nil {
		return err
	}

	sch := attack.Plan(attack.DefaultPlannerConfig(), venues)
	if *reckless {
		for i := range sch {
			sch[i].Wait = 0
		}
	}
	user := lab.Service.RegisterUser("CLI Cheater", "", "Lincoln")
	rep, err := attack.NewCheater(lab.Service, user, lab.Clock).Execute(sch)
	if err != nil {
		return err
	}

	for i, s := range rep.Stops {
		status := "ok"
		if !s.Result.Accepted {
			status = fmt.Sprintf("DENIED (%s)", s.Result.Reason)
		}
		fmt.Printf("  stop %2d  venue %-6d wait %-8s %s\n",
			i+1, s.Stop.Venue, s.Stop.Wait.Round(time.Second), status)
	}
	fmt.Printf("\naccepted %d / denied %d, %d points, badges %v, mayorships %d, virtual time %s\n",
		rep.Accepted, rep.Denied, rep.Points, rep.Badges, rep.Mayors, sch.TotalWait())

	xys := make([]plot.XY, len(venues))
	for i, v := range venues {
		xys[i] = plot.XY{X: v.Location.Lon, Y: v.Location.Lat}
	}
	fmt.Println(plot.GeoScatter(xys, "tour path (venues checked into)"))
	return nil
}
