// Command crawl runs the multi-threaded profile crawler (§3.2, Fig
// 3.3) against an lbsnd instance, sweeping the incrementing numeric
// IDs, and exports the recovered UserInfo/VenueInfo/RecentCheckins
// tables as JSON.
//
// Usage:
//
//	crawl -url http://localhost:8080 [-mode both|users|venues]
//	      [-workers 14] [-from 1] [-to 0] [-out crawl.json]
//
// With -to 0 the sweep is open-ended and stops after 200 consecutive
// 404s — how an attacker discovers the ID-space ceiling.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"locheat/internal/crawler"
	"locheat/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crawl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crawl", flag.ContinueOnError)
	baseURL := fs.String("url", "http://localhost:8080", "target site base URL")
	mode := fs.String("mode", "both", "users, venues, or both")
	workers := fs.Int("workers", 14, "crawl threads (paper: 14-16 for users, 5-6 for venues)")
	from := fs.Uint64("from", 1, "first ID")
	to := fs.Uint64("to", 0, "last ID (0 = sweep until 200 consecutive 404s)")
	out := fs.String("out", "crawl.json", "output JSON path")
	diffWith := fs.String("diff", "", "previous crawl JSON to diff against (§3.2 differential crawling)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	db := store.New()
	c := crawler.New(crawler.Config{
		BaseURL:         *baseURL,
		Workers:         *workers,
		StopAfterMisses: 200,
	}, db)

	runMode := func(m crawler.Mode) error {
		stats, err := c.Crawl(ctx, m, *from, *to)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d fetched, %d parsed, %d not-found, %d denied, %d errors in %s (%.0f pages/hour)\n",
			m, stats.Fetched, stats.Parsed, stats.NotFound, stats.Denied, stats.Errors,
			stats.Elapsed.Round(1e6), stats.PagesPerHour())
		return nil
	}

	if *mode == "users" || *mode == "both" {
		if err := runMode(crawler.ModeUsers); err != nil {
			return err
		}
	}
	if *mode == "venues" || *mode == "both" {
		if err := runMode(crawler.ModeVenues); err != nil {
			return err
		}
	}

	db.DeriveStats()
	users, venues, recents := db.Counts()
	fmt.Printf("store: %d users, %d venues, %d recent-check-in relations\n", users, venues, recents)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := db.ExportJSON(f); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *diffWith != "" {
		if err := printDiff(*diffWith, db); err != nil {
			return err
		}
	}
	return nil
}

// printDiff loads a previous crawl and reports what changed — the
// §3.2 repeated-crawl analysis: per-user new recent-list appearances
// and mayorship churn.
func printDiff(prevPath string, current *store.DB) error {
	pf, err := os.Open(prevPath)
	if err != nil {
		return fmt.Errorf("diff base: %w", err)
	}
	defer pf.Close()
	prev := store.New()
	if err := prev.ImportJSON(pf); err != nil {
		return fmt.Errorf("diff base %s: %w", prevPath, err)
	}
	d := store.ComputeDiff(prev, current)
	fmt.Printf("diff vs %s: %d new users, %d new venues, %d new recent appearances, %d lost, %d mayor changes\n",
		prevPath, len(d.NewUsers), len(d.NewVenues), len(d.NewRelations), len(d.LostRelations), len(d.MayorChanges))
	app := d.NewAppearancesByUser()
	top := make([]uint64, 0, len(app))
	for uid := range app {
		top = append(top, uid)
	}
	sort.Slice(top, func(i, j int) bool {
		if app[top[i]] != app[top[j]] {
			return app[top[i]] > app[top[j]]
		}
		return top[i] < top[j]
	})
	for i, uid := range top {
		if i >= 10 {
			break
		}
		fmt.Printf("  user %-8d appeared on %d new venue lists\n", uid, app[uid])
	}
	return nil
}
