package main

import (
	"os"
	"path/filepath"
	"testing"

	"locheat/internal/core"
	"locheat/internal/lbsn"
)

func TestCrawlCLIEndToEnd(t *testing.T) {
	lab, err := core.NewLab(core.LabConfig{Scale: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	baseURL, shutdown, err := lab.ServeLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()

	out := filepath.Join(t.TempDir(), "crawl.json")
	err = run([]string{
		"-url", baseURL,
		"-mode", "both",
		"-workers", "8",
		"-from", "1",
		"-to", "50",
		"-out", out,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	info, err := os.Stat(out)
	if err != nil {
		t.Fatalf("output missing: %v", err)
	}
	if info.Size() == 0 {
		t.Error("output file empty")
	}
}

func TestCrawlCLIBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestCrawlCLIUnreachableTarget(t *testing.T) {
	out := filepath.Join(t.TempDir(), "crawl.json")
	err := run([]string{"-url", "http://127.0.0.1:1", "-mode", "users", "-to", "3", "-out", out})
	// Transport errors are counted, not fatal; the command still
	// writes an (empty) store.
	if err != nil {
		t.Fatalf("run against dead host: %v", err)
	}
}

func TestCrawlCLIDifferential(t *testing.T) {
	lab, err := core.NewLab(core.LabConfig{Scale: 0.01, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	baseURL, shutdown, err := lab.ServeLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()

	dir := t.TempDir()
	first := filepath.Join(dir, "day1.json")
	if err := run([]string{"-url", baseURL, "-mode", "both", "-to", "60", "-out", first}); err != nil {
		t.Fatalf("first crawl: %v", err)
	}
	// The world moves: one user checks in somewhere new.
	u := lab.Service.RegisterUser("Newbie", "", "Lincoln")
	v, ok := lab.Service.Venue(1)
	if !ok {
		t.Fatal("venue 1 missing")
	}
	if _, err := lab.Service.CheckIn(lbsn.CheckinRequest{UserID: u, VenueID: v.ID, Reported: v.Location}); err != nil {
		t.Fatal(err)
	}
	second := filepath.Join(dir, "day2.json")
	if err := run([]string{"-url", baseURL, "-mode", "both", "-to", "61", "-out", second, "-diff", first}); err != nil {
		t.Fatalf("differential crawl: %v", err)
	}
}

func TestCrawlCLIDiffMissingBase(t *testing.T) {
	lab, err := core.NewLab(core.LabConfig{Scale: 0.01, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	baseURL, shutdown, err := lab.ServeLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = shutdown() }()
	out := filepath.Join(t.TempDir(), "c.json")
	if err := run([]string{"-url", baseURL, "-mode", "users", "-to", "5", "-out", out, "-diff", "/no/such.json"}); err == nil {
		t.Error("missing diff base accepted")
	}
}
