// Command lbsnd serves the simulated LBSN profile website — the
// reproduction's stand-in for foursquare.com — over HTTP, backed by a
// freshly generated synthetic world.
//
// Usage:
//
//	lbsnd [-addr :8080] [-users 20000] [-seed 42]
//	      [-login-wall] [-rate-limit 0] [-hash-ids] [-hide-visitors]
//
// The defence flags enable the §5.2 mitigations so a crawler (cmd/crawl)
// can be pointed at a hardened instance.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"locheat/internal/api"
	"locheat/internal/lbsn"
	"locheat/internal/simclock"
	"locheat/internal/synth"
	"locheat/internal/web"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lbsnd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lbsnd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	users := fs.Int("users", 20000, "synthetic users (venues = 3x)")
	seed := fs.Int64("seed", 42, "world RNG seed")
	loginWall := fs.Bool("login-wall", false, "require login for profile pages (§5.2)")
	rateLimit := fs.Int("rate-limit", 0, "per-IP pages/minute, 0 = off (§5.2)")
	hashIDs := fs.Bool("hash-ids", false, "replace numeric profile URLs with hashes (§5.2)")
	hideVisitors := fs.Bool("hide-visitors", false, "remove the Who's-been-here section")
	apiKey := fs.String("api-key", "", "issue this developer API key and mount /api/v1 (§3.1 vector 3)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Printf("generating world: %d users, %d venues (seed %d)...\n", *users, 3**users, *seed)
	world := synth.Generate(synth.Config{Seed: *seed, Users: *users})
	clock := simclock.Real{}
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	if err := world.LoadInto(svc); err != nil {
		return err
	}

	var opts []web.Option
	if *loginWall {
		opts = append(opts, web.WithLoginWall())
	}
	if *rateLimit > 0 {
		opts = append(opts, web.WithRateLimit(*rateLimit, 3))
	}
	if *hashIDs {
		opts = append(opts, web.WithHashedIDs("lbsnd"))
	}
	if *hideVisitors {
		opts = append(opts, web.WithoutWhosBeenHere())
	}
	site := web.NewServer(svc, clock, opts...)
	var handler http.Handler = site
	if *apiKey != "" {
		apiSrv := api.NewServer(svc)
		apiSrv.IssueKey(*apiKey)
		mux := http.NewServeMux()
		mux.Handle("/api/v1/", apiSrv)
		mux.Handle("/", site)
		handler = mux
		fmt.Printf("developer API mounted at /api/v1 (key %q)\n", *apiKey)
	}

	fmt.Printf("serving %d users / %d venues on %s\n", svc.UserCount(), svc.VenueCount(), *addr)
	fmt.Printf("try: curl http://localhost%s/user/1  and  /venue/1\n", *addr)
	return http.ListenAndServe(*addr, handler)
}
