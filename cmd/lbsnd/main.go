// Command lbsnd serves the simulated LBSN profile website — the
// reproduction's stand-in for foursquare.com — over HTTP, backed by a
// freshly generated synthetic world, with the internal/stream pipeline
// running the paper's cheating detection online over every check-in.
//
// Usage:
//
//	lbsnd [-addr :8080] [-users 20000] [-seed 42]
//	      [-login-wall] [-rate-limit 0] [-hash-ids] [-hide-visitors]
//	      [-api-key KEY] [-stream] [-stream-shards 0] [-stream-buffer 1024]
//	      [-journal-dir DIR] [-journal-fsync 64] [-journal-segment-bytes N]
//	      [-journal-segments 8] [-quarantine] [-quarantine-threshold 5]
//	      [-quarantine-window 10m] [-quarantine-duration 1h]
//	      [-cluster-node ID] [-cluster-peers ID=URL,...] [-cluster-listen :9101]
//	      [-cluster-join URL,...] [-cluster-advertise URL] [-chaos]
//	      [-journal-mirror 0] [-replica-factor 1] [-outbox-bytes 4194304]
//	      [-cluster-json] [-journal-json] [-pprof 127.0.0.1:6060]
//	      [-mutexprofile 0] [-blockprofile 0]
//	      [-trace-sample 0] [-trace-buffer 256]
//	      [-backpressure] [-bp-high-water 0.85] [-bp-low-water 0]
//
// The defence flags enable the §5.2 mitigations so a crawler (cmd/crawl)
// can be pointed at a hardened instance. With -api-key the developer
// API is mounted at /api/v1, including GET /api/v1/alerts,
// /api/v1/alerts/stats and the /api/v1/quarantine admin surface.
//
// With -journal-dir the detector's alerts go to an append-only
// segmented journal instead of the default in-memory ring: on startup
// the journal is replayed so /api/v1/alerts serves pre-restart
// history, and on shutdown it is flushed and closed after the pipeline
// drains. With -quarantine (default on when the stream runs) the §4→
// §2.3 feedback loop is closed: users whose alert volume crosses the
// threshold are auto-quarantined and their check-ins denied until the
// quarantine expires.
//
// With -journal-dir the active quarantine set is also snapshotted to
// <dir>/quarantine.json on every change and reloaded on start, so a
// restarted daemon keeps denying flagged cheaters.
//
// With -cluster-node/-cluster-peers several lbsnd instances split the
// user space: a consistent-hash ring assigns each user an owner node,
// check-ins ingested anywhere are forwarded to their owner's detector,
// and /api/v1/alerts, /api/v1/quarantine and /api/v1/cluster serve the
// merged cluster view from any node. -cluster-listen binds the
// internal /cluster/v1 surface (heartbeats, forwarding, handoff) —
// point it at a cluster-internal interface, it is unauthenticated.
// The peer list must include this node's own ID so its advertised URL
// is known; on shutdown the node leaves gracefully, handing its users'
// detector and quarantine state to the surviving owners.
//
// Instead of a static peer list a node can join a running cluster:
// -cluster-join points at one or more seed nodes, the member table
// arrives over the join handshake and gossip, and the node advertises
// -cluster-advertise (derived from -cluster-listen when omitted).
// /readyz reports "joining cluster" until the node owns traffic.
// -chaos mounts the fault-injection control surface at
// /cluster/v1/fault and routes all cluster-internal clients through
// it, for partition/flap drills (scripts/soak.sh SOAK_CHAOS=1).
//
// With -replica-factor 2+ (requires -journal-dir and the cluster tier)
// the durability tier runs: each node streams its alert-journal
// appends to replica-factor-1 ring successors, so a node killed -9
// still has its full alert history served from the promoted replica in
// merged views; quarantine transitions broadcast cluster-wide (with
// digest anti-entropy) so a quarantined cheater is denied on every
// node; and failed cross-node forwards spill to a bounded on-disk
// outbox (-outbox-bytes) replayed with dedupe when the peer recovers.
// -journal-mirror bounds the journal's in-memory mirror; older history
// pages in from disk via the per-segment index.
//
// Cluster nodes speak a compact binary codec on the internal wire
// (negotiated per peer via heartbeats, with JSON fallback so a
// mixed-version cluster interoperates during a rolling upgrade), and
// the journal writes its v2 binary segment format; -cluster-json and
// -journal-json pin either back to JSON. With -pprof the daemon serves
// net/http/pprof (plus a second /metrics scrape) on a separate listener
// — keep it on loopback, it is unauthenticated; -mutexprofile and
// -blockprofile arm the corresponding runtime profiles.
//
// With -trace-sample > 0 the cross-node tracing tier runs: that
// fraction of check-ins (plus every denied claim) is head-sampled
// into a trace whose spans follow the event through the shard rings,
// detector stages, journal appends and cross-node forwards; a
// tail-based flight recorder keeps the interesting traces (alerted,
// dropped, or slower than the rolling detection-latency p99) in a
// -trace-buffer-bounded ring served at GET /api/v1/traces (merged
// across the cluster) and GET /api/v1/traces/{id}. Detection-latency
// and ship-lag histogram scrapes carry OpenMetrics exemplars naming
// a retained trace.
//
// With -backpressure (default on when the stream runs) the adaptive
// admission tier gates POST /api/v1/checkins: depth monitors over the
// shard rings, DLQ and cluster forward queues feed an EWMA-smoothed
// controller that shed-by-priority answers 429 + Retry-After once
// utilization crosses -bp-high-water (releasing at -bp-low-water) —
// repeat dedupe-cheap claims shed first, fresh claims probabilistically,
// quarantined users' denied-claim evidence never. While shedding,
// /readyz answers 503 so balancers steer around the node; the
// controller state is on /metrics and /api/v1/alerts/stats. Cross-node
// clients (forward, journal ship, quarantine broadcast) run per-peer
// circuit breakers with half-open probing, so a dead peer costs one
// probe per window instead of a timeout per batch.
//
// Every tier reports into a zero-allocation telemetry registry exposed
// as Prometheus text on GET /metrics, with GET /healthz (liveness) and
// GET /readyz (readiness: journal replayed and writable, cluster seat
// held) beside it — all three are on the public listener regardless of
// -api-key.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the HTTP server
// drains, then the pipeline processes every queued event before final
// stats print.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof: profiling surface on its own listener
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"locheat/internal/api"
	"locheat/internal/backpressure"
	"locheat/internal/cluster"
	"locheat/internal/lbsn"
	"locheat/internal/obs"
	"locheat/internal/simclock"
	"locheat/internal/store"
	"locheat/internal/stream"
	"locheat/internal/synth"
	"locheat/internal/trace"
	"locheat/internal/web"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lbsnd:", err)
		os.Exit(1)
	}
}

// pprofMetricsOnce guards the DefaultServeMux registration — ServeMux
// panics on a duplicate pattern and run is re-entrant in tests.
var pprofMetricsOnce sync.Once

func registerPprofMetrics(reg *obs.Registry) {
	pprofMetricsOnce.Do(func() {
		http.DefaultServeMux.Handle("/metrics", reg.Handler())
	})
}

func run(args []string) error {
	fs := flag.NewFlagSet("lbsnd", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	users := fs.Int("users", 20000, "synthetic users (venues = 3x)")
	seed := fs.Int64("seed", 42, "world RNG seed")
	loginWall := fs.Bool("login-wall", false, "require login for profile pages (§5.2)")
	rateLimit := fs.Int("rate-limit", 0, "per-IP pages/minute, 0 = off (§5.2)")
	hashIDs := fs.Bool("hash-ids", false, "replace numeric profile URLs with hashes (§5.2)")
	hideVisitors := fs.Bool("hide-visitors", false, "remove the Who's-been-here section")
	apiKey := fs.String("api-key", "", "issue this developer API key and mount /api/v1 (§3.1 vector 3)")
	streamOn := fs.Bool("stream", true, "run the online cheating-detection pipeline")
	streamShards := fs.Int("stream-shards", 0, "pipeline shards, 0 = GOMAXPROCS")
	streamBuffer := fs.Int("stream-buffer", 1024, "per-shard event queue (full queue drops, never blocks)")
	journalDir := fs.String("journal-dir", "", "persist alerts to an append-only journal in this directory (replayed on start)")
	journalFsync := fs.Int("journal-fsync", 64, "fsync the journal every N alerts (1 = every alert)")
	journalSegBytes := fs.Int64("journal-segment-bytes", 1<<20, "rotate journal segments at this size")
	journalSegments := fs.Int("journal-segments", 8, "journal segments retained (older ones are deleted)")
	quarOn := fs.Bool("quarantine", true, "auto-quarantine users whose alert volume crosses the threshold (needs -stream)")
	quarThreshold := fs.Int("quarantine-threshold", 5, "alerts within -quarantine-window that trigger quarantine")
	quarWindow := fs.Duration("quarantine-window", 10*time.Minute, "alert-counting window (event time)")
	quarDuration := fs.Duration("quarantine-duration", time.Hour, "how long an auto-quarantine lasts")
	clusterNode := fs.String("cluster-node", "", "this node's cluster ID (enables the partitioned ingest tier; needs -stream, -cluster-listen and -cluster-peers or -cluster-join)")
	clusterPeers := fs.String("cluster-peers", "", "static cluster members as ID=URL,... including this node")
	clusterJoin := fs.String("cluster-join", "", "seed node base URL(s), comma-separated: join a running cluster via the gossip handshake instead of a static -cluster-peers roll")
	clusterAdvertise := fs.String("cluster-advertise", "", "base URL peers use to reach this node's cluster listener (default derived from -cluster-listen); required with -cluster-join when -cluster-peers omits this node")
	clusterListen := fs.String("cluster-listen", "", "bind address for the internal /cluster/v1 surface (unauthenticated; keep it cluster-internal)")
	chaosOn := fs.Bool("chaos", false, "mount the fault-injection control surface at /cluster/v1/fault and route cluster clients through it (chaos drills only; the flag gates an unauthenticated endpoint)")
	journalMirror := fs.Int("journal-mirror", 0, "bound the journal's in-memory mirror to the newest N alerts, paging older queries from disk (0 = mirror everything)")
	replicaFactor := fs.Int("replica-factor", 1, "total alert-journal copies incl. this node; 2+ ships appends to ring successors (needs -journal-dir and the cluster tier)")
	outboxBytes := fs.Int64("outbox-bytes", 4<<20, "per-peer on-disk spill cap for failed cross-node forwards; 0 disables the outbox (needs -journal-dir and the cluster tier)")
	clusterJSON := fs.Bool("cluster-json", false, "pin the cluster wire to JSON: neither send nor accept the binary codec (rolling-upgrade escape hatch)")
	journalJSON := fs.Bool("journal-json", false, "write new journal segments in the v1 JSON format instead of v3 binary+table (either way old segments replay as-is)")
	traceSample := fs.Float64("trace-sample", 0, "head-sample this fraction of check-ins (0-1) into the trace flight recorder; denied claims always trace when > 0; 0 = tracing off (needs -stream)")
	traceBuffer := fs.Int("trace-buffer", 256, "flight-recorder capacity in retained trace trees")
	bpOn := fs.Bool("backpressure", true, "adaptive admission control: shed API check-ins by priority when pipeline queues saturate (needs -stream)")
	bpHigh := fs.Float64("bp-high-water", 0.85, "queue utilization that engages load shedding")
	bpLow := fs.Float64("bp-low-water", 0, "utilization that releases shedding (0 = half of -bp-high-water)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address for profiling (unauthenticated; keep it loopback, e.g. 127.0.0.1:6060); empty = off")
	mutexProfile := fs.Int("mutexprofile", 0, "sample 1/N mutex contention events for /debug/pprof/mutex (0 = off; needs -pprof)")
	blockProfile := fs.Int("blockprofile", 0, "sample blocking events >= N ns for /debug/pprof/block (0 = off; needs -pprof)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *clusterNode != "" && (!*streamOn || (*clusterPeers == "" && *clusterJoin == "") || *clusterListen == "") {
		return fmt.Errorf("-cluster-node needs -stream, -cluster-listen, and -cluster-peers or -cluster-join")
	}
	if *replicaFactor >= 2 && (*clusterNode == "" || *journalDir == "") {
		return fmt.Errorf("-replica-factor %d needs -cluster-node and -journal-dir (replication ships the alert journal between cluster nodes)", *replicaFactor)
	}

	// reg is the node's telemetry registry: every tier registers into it
	// and both scrape surfaces (/metrics on the public listener and on
	// the pprof listener) read from it.
	reg := obs.NewRegistry()

	if *mutexProfile > 0 {
		runtime.SetMutexProfileFraction(*mutexProfile)
	}
	if *blockProfile > 0 {
		runtime.SetBlockProfileRate(*blockProfile)
	}
	if *pprofAddr != "" {
		// net/http/pprof registers on http.DefaultServeMux, which nothing
		// else in the daemon serves — the profiling surface stays off the
		// public listener. /metrics rides the same mux so an operator can
		// scrape a node whose public listener is wedged. Failure to bind
		// is logged, not fatal: losing profiling must not take detection
		// down.
		registerPprofMetrics(reg)
		go func() {
			fmt.Printf("pprof: profiling surface on http://%s/debug/pprof/ (plus /metrics)\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "lbsnd: pprof:", err)
			}
		}()
	}

	fmt.Printf("generating world: %d users, %d venues (seed %d)...\n", *users, 3**users, *seed)
	world := synth.Generate(synth.Config{Seed: *seed, Users: *users})
	clock := simclock.Real{}
	svc := lbsn.New(lbsn.DefaultConfig(), clock, nil)
	if err := world.LoadInto(svc); err != nil {
		return err
	}
	svc.RegisterObs(reg)

	// errc carries a fatal listener failure from either server (public
	// or cluster-internal): a node that cannot bind its cluster surface
	// must die loudly, not run half-joined — peers would mark it dead
	// and take its users while it keeps detecting them locally.
	errc := make(chan error, 2)

	var pipeline *stream.Pipeline
	var journal *store.AlertJournal
	var policy *lbsn.QuarantinePolicy
	var clusterN *cluster.Node
	var clusterSrv *http.Server
	var tracer *trace.Tracer
	if *streamOn {
		if *streamBuffer <= 0 {
			*streamBuffer = 1024 // keep the banner honest about the effective size
		}
		if *traceSample > 0 {
			nodeID := *clusterNode
			if nodeID == "" {
				nodeID = "local"
			}
			// Register the detection-latency histogram before the pipeline
			// does (register-or-find: the pipeline gets the same handle) so
			// the tail-retention threshold can read its rolling p99 — a
			// trace is "interesting" when it is slower than what the node
			// currently considers normal.
			detLat := reg.Histogram("locheat_detection_latency_seconds",
				"end-to-end detection latency: pipeline ingest stamp to alert append",
				obs.Seconds)
			tracer = trace.New(trace.Config{
				Node:       nodeID,
				SampleRate: *traceSample,
				Buffer:     *traceBuffer,
				Threshold: func() float64 {
					s := detLat.Snapshot()
					return s.Quantile(0.99)
				},
				Obs: reg,
			})
			fmt.Printf("tracing: sampling %.3g of check-ins into a %d-trace flight recorder (GET /api/v1/traces)\n",
				*traceSample, *traceBuffer)
		}
		var alertStore store.AlertStore
		if *journalDir != "" {
			var err error
			format := store.JournalFormatBinaryTable
			if *journalJSON {
				format = store.JournalFormatJSON
			}
			journal, err = store.OpenAlertJournal(store.JournalConfig{
				Dir:          *journalDir,
				SegmentBytes: *journalSegBytes,
				MaxSegments:  *journalSegments,
				FsyncEvery:   *journalFsync,
				MirrorAlerts: *journalMirror,
				Format:       format,
				Obs:          reg,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "lbsnd: "+format+"\n", args...)
				},
			})
			if err != nil {
				return err
			}
			alertStore = journal
			st := journal.Stats()
			fmt.Printf("alert journal %s: %d alerts replayed from %d segment(s)\n",
				*journalDir, st.Replayed, st.Segments)
		}
		pipeline = stream.New(stream.Config{
			Shards:      *streamShards,
			ShardBuffer: *streamBuffer,
			Clock:       clock,
			Store:       alertStore,
			Obs:         reg,
			Tracer:      tracer,
		})
		observer := func(ev lbsn.CheckinEvent) { pipeline.Publish(ev) }
		if *clusterNode != "" {
			var peers []cluster.Member
			var err error
			if *clusterPeers != "" {
				peers, err = cluster.ParsePeers(*clusterPeers)
				if err != nil {
					return err
				}
			}
			var joinSeeds []string
			if *clusterJoin != "" {
				for _, seed := range strings.Split(*clusterJoin, ",") {
					if seed = strings.TrimSpace(seed); seed != "" {
						joinSeeds = append(joinSeeds, seed)
					}
				}
			}
			var self cluster.Member
			for _, p := range peers {
				if p.ID == *clusterNode {
					self = p
				}
			}
			if self.ID == "" {
				// A dynamically joining node is not in anyone's static peer
				// list — it advertises itself through the join handshake.
				if len(joinSeeds) == 0 {
					return fmt.Errorf("cluster: -cluster-peers does not list this node %q (peers need the advertised URL of every member, or join dynamically with -cluster-join)", *clusterNode)
				}
				advertise := *clusterAdvertise
				if advertise == "" {
					// Best-effort derivation: a bare ":port" listen binds every
					// interface, so loopback is only right for single-host
					// drills — production joins should pass -cluster-advertise.
					if strings.HasPrefix(*clusterListen, ":") {
						advertise = "http://127.0.0.1" + *clusterListen
					} else {
						advertise = "http://" + *clusterListen
					}
				}
				self = cluster.Member{ID: *clusterNode, Addr: strings.TrimRight(advertise, "/")}
			}
			var fault *cluster.FaultInjector
			if *chaosOn {
				fault = cluster.NewFaultInjector(clock)
				fmt.Printf("chaos: fault injection armed — POST /cluster/v1/fault on %s steers it\n", *clusterListen)
			}
			replicaOpts := cluster.ReplicaOptions{}
			if *journalDir != "" {
				replicaOpts = cluster.ReplicaOptions{
					Dir:            *journalDir,
					Factor:         *replicaFactor,
					OutboxMaxBytes: *outboxBytes,
				}
				if *outboxBytes == 0 {
					replicaOpts.OutboxMaxBytes = -1 // explicit off
				}
			}
			clusterN, err = cluster.NewNode(svc, pipeline, cluster.Config{
				Self:              self,
				Peers:             peers,
				Join:              joinSeeds,
				Replica:           replicaOpts,
				Fault:             fault,
				DisableBinaryWire: *clusterJSON,
				Obs:               reg,
				Tracer:            tracer,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "lbsnd: "+format+"\n", args...)
				},
			})
			if err != nil {
				return err
			}
			if *replicaFactor >= 2 {
				fmt.Printf("replication: journal ships to %d ring successor(s); quarantine broadcast + forwarding outbox armed in %s\n",
					*replicaFactor-1, *journalDir)
			}
			clusterSrv = &http.Server{Addr: *clusterListen, Handler: clusterN.Handler()}
			go func() {
				if err := clusterSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
					errc <- fmt.Errorf("cluster listener: %w", err)
				}
			}()
			if len(joinSeeds) > 0 {
				// Announce to a seed and pull the member table before the
				// heartbeat loop starts; gossip spreads us from there. A node
				// that cannot reach any seed must die loudly, not run as a
				// cluster of one.
				if err := clusterN.JoinCluster(); err != nil {
					clusterSrv.Close()
					return err
				}
				fmt.Printf("cluster: join handshake complete via %s; serving after the first probe round\n", joinSeeds[0])
			}
			clusterN.Start()
			// The cluster node sits between the service and the pipeline:
			// it publishes locally-owned users and forwards the rest.
			observer = func(ev lbsn.CheckinEvent) { clusterN.Ingest(ev) }
			fmt.Printf("cluster node %q: internal surface on %s, %d static peer(s), advertised as %s\n",
				*clusterNode, *clusterListen, len(peers), self.Addr)
		}
		svc.SetCheckinObserver(observer)
		// Surface dead letters and alerts on the console; both reads are
		// best-effort and never slow the pipeline down.
		go func() {
			for dl := range pipeline.DeadLetters() {
				fmt.Printf("stream: dead letter: %s (user %d venue %d)\n",
					dl.Reason, dl.Event.UserID, dl.Event.VenueID)
			}
		}()
		go func() {
			for a := range pipeline.Subscribe(256) {
				fmt.Printf("stream: ALERT [%s] user %d venue %d: %s\n",
					a.Detector, a.UserID, a.VenueID, a.Detail)
			}
		}()
		if *quarOn {
			// The feedback loop: alert volume past the threshold turns
			// detection into access control (§4 → §2.3).
			policy = lbsn.NewQuarantinePolicy(svc, lbsn.QuarantinePolicyConfig{
				Threshold: *quarThreshold,
				Window:    *quarWindow,
				Duration:  *quarDuration,
			})
			go policy.Run(pipeline.Subscribe(256))
			fmt.Printf("auto-quarantine armed: %d alerts / %s => %s quarantine\n",
				*quarThreshold, *quarWindow, *quarDuration)
		}
		fmt.Printf("online detector running: %d shards, %d-event queues\n",
			len(pipeline.Stats().PerShard), *streamBuffer)
	}

	// The backpressure tier: per-stage depth monitors feed the adaptive
	// admission controller that gates POST /checkins — saturation turns
	// into explicit 429s at the edge instead of silent drops deeper in
	// the pipeline. The stage list is the event path: shard rings, DLQ,
	// and (clustered) the forwarder's peer queues.
	var admission *backpressure.Admission
	if *bpOn && pipeline != nil {
		mon := backpressure.NewMonitor(
			backpressure.Stage{Name: "stream", Sample: pipeline.QueueSample},
			backpressure.Stage{Name: "dlq", Sample: pipeline.DLQSample},
		)
		if clusterN != nil {
			mon.Add(backpressure.Stage{Name: "forward", Sample: clusterN.QueueSample})
		}
		admission = backpressure.NewAdmission(backpressure.AdmissionConfig{
			Monitor:   mon,
			HighWater: *bpHigh,
			LowWater:  *bpLow,
			Clock:     clock,
			Obs:       reg,
		})
		fmt.Printf("backpressure: adaptive admission armed (engage at %.0f%% queue utilization)\n", *bpHigh*100)
	}

	// Quarantine persistence: the active set snapshots to the journal
	// dir on every change (and at shutdown), and reloads on start — a
	// restarted daemon keeps denying flagged cheaters instead of giving
	// them a free reset.
	var saveQuarantines func()
	if *journalDir != "" {
		snapPath := filepath.Join(*journalDir, "quarantine.json")
		recs, err := store.LoadQuarantineSnapshot(snapPath, clock.Now())
		if err != nil {
			// A corrupt snapshot costs the active set, not the daemon.
			fmt.Fprintln(os.Stderr, "lbsnd:", err)
		} else if n := svc.RestoreQuarantines(recs); n > 0 {
			fmt.Printf("quarantine: %d active quarantine(s) restored from %s\n", n, snapPath)
		}
		var snapMu sync.Mutex
		saveQuarantines = func() {
			snapMu.Lock()
			defer snapMu.Unlock()
			if err := store.SaveQuarantineSnapshot(snapPath, svc.QuarantineRecords(nil), clock.Now()); err != nil {
				fmt.Fprintln(os.Stderr, "lbsnd:", err)
			}
		}
		svc.SetQuarantineListener(saveQuarantines)
	}

	var opts []web.Option
	if *loginWall {
		opts = append(opts, web.WithLoginWall())
	}
	if *rateLimit > 0 {
		opts = append(opts, web.WithRateLimit(*rateLimit, 3))
	}
	if *hashIDs {
		opts = append(opts, web.WithHashedIDs("lbsnd"))
	}
	if *hideVisitors {
		opts = append(opts, web.WithoutWhosBeenHere())
	}
	site := web.NewServer(svc, clock, opts...)
	// The operational surface always mounts, API key or not: /metrics is
	// the registry scrape, /healthz is liveness (the process answers),
	// /readyz is readiness — replay finished (the journal opens only
	// after replaying), the journal still writable, and the cluster seat
	// held (not mid-leave).
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if journal != nil && !journal.WriteHealthy() {
			http.Error(w, "journal not writable", http.StatusServiceUnavailable)
			return
		}
		if clusterN != nil {
			switch clusterN.ReadyState() {
			case "joining":
				// Mid-join: the member table is synced but the node owns no
				// ring share until its first successful probe round. Tell
				// the balancer to hold traffic a beat longer.
				http.Error(w, "joining cluster", http.StatusServiceUnavailable)
				return
			case "leaving":
				http.Error(w, "leaving cluster", http.StatusServiceUnavailable)
				return
			}
		}
		if admission != nil && admission.Saturated() {
			// Shedding load: tell the balancer to route around this node
			// while it drains. Liveness (/healthz) is unaffected.
			http.Error(w, "overloaded, shedding load", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ready\n"))
	})
	if *apiKey != "" {
		apiSrv := api.NewServer(svc)
		apiSrv.IssueKey(*apiKey)
		if pipeline != nil {
			apiSrv.AttachPipeline(pipeline)
		}
		if policy != nil {
			apiSrv.AttachQuarantinePolicy(policy)
		}
		if clusterN != nil {
			apiSrv.AttachCluster(clusterN)
		}
		if admission != nil {
			apiSrv.AttachAdmission(admission)
		}
		apiSrv.AttachObs(reg)
		apiSrv.AttachTracer(tracer)
		mux.Handle("/api/v1/", apiSrv)
		fmt.Printf("developer API mounted at /api/v1 (key %q)\n", *apiKey)
		if pipeline != nil {
			fmt.Printf("alerts: GET /api/v1/alerts (paginated), /api/v1/alerts/stats, /api/v1/quarantine\n")
		}
	}
	mux.Handle("/", site)
	var handler http.Handler = mux

	fmt.Printf("serving %d users / %d venues on %s\n", svc.UserCount(), svc.VenueCount(), *addr)
	fmt.Printf("try: curl http://localhost%s/user/1  and  /venue/1\n", *addr)

	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		if admission != nil {
			admission.Close()
		}
		if clusterN != nil {
			clusterN.Shutdown() // hand users off even on a failed listen
		}
		if clusterSrv != nil {
			clusterSrv.Close()
		}
		if pipeline != nil {
			pipeline.Close()
		}
		if saveQuarantines != nil {
			saveQuarantines()
		}
		if journal != nil {
			if cerr := journal.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "lbsnd: journal close:", cerr)
			}
		}
		return err
	case <-ctx.Done():
	}

	fmt.Println("\nshutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "lbsnd: http drain timed out; open connections abandoned")
		} else {
			fmt.Fprintln(os.Stderr, "lbsnd: http shutdown:", err)
		}
	}
	if admission != nil {
		admission.Close()
		st := admission.Status()
		fmt.Printf("backpressure: %d engagement(s); admitted low/normal/critical %d/%d/%d, shed %d/%d/%d\n",
			st.Engagements,
			st.Admitted["low"], st.Admitted["normal"], st.Admitted["critical"],
			st.Shed["low"], st.Shed["normal"], st.Shed["critical"])
	}
	if clusterN != nil {
		// Leave the cluster before closing the pipeline: the handoff
		// exports detector state through the still-running shard workers,
		// and the leave notice stops peers forwarding to us. The internal
		// listener stays up through the handoff so in-flight forwards and
		// peer rebalances can still land.
		clusterN.Shutdown()
		cst := clusterN.Status()
		fmt.Printf("cluster: %d forwarded (%d dropped, %d spilled, %d errors), %d received; handed off %d users in %d bundles\n",
			cst.Forward.Sent, cst.Forward.Dropped, cst.Forward.Spilled, cst.Forward.Errors,
			cst.Ingest.Received, cst.Handoff.SentUsers, cst.Handoff.SentBundles)
		if rs := cst.Replication; rs.Enabled {
			for _, f := range rs.Followers {
				fmt.Printf("replication: follower %s acked cursor %d (lag %d, %d errors)\n",
					f.ID, f.Cursor, f.Lag, f.Errors)
			}
		}
		if ob := cst.Replication.Outbox; ob != nil && ob.Queued > 0 {
			fmt.Printf("outbox: %d spilled event(s) persisted; they replay on the next start\n", ob.Queued)
		}
	}
	if clusterSrv != nil {
		if err := clusterSrv.Shutdown(shutdownCtx); err != nil {
			clusterSrv.Close()
		}
	}
	if pipeline != nil {
		pipeline.Close() // drains every queued event through the detectors, then flushes the store
		st := pipeline.Stats()
		fmt.Printf("stream: %d published, %d processed, %d dropped, %d dead-lettered, %d alerts, %d evicted\n",
			st.Published, st.Processed, st.Dropped, st.DeadLettered, st.Alerts, st.Evicted)
		for det, n := range st.AlertsByDetector {
			fmt.Printf("stream:   %-14s %d\n", det, n)
		}
		if policy != nil {
			ps := policy.Stats()
			qs := svc.QuarantineStats()
			fmt.Printf("quarantine: %d triggered by policy, %d active, %d check-ins denied\n",
				ps.Triggered, qs.Active, qs.DeniedCheckins)
		}
	}
	if saveQuarantines != nil {
		saveQuarantines() // final snapshot: quarantines survive the restart
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lbsnd: journal close:", err)
		}
		// Stats after Close so the banner includes the final flush.
		st := journal.Stats()
		fmt.Printf("alert journal: %d appended across %d segment(s), %d fsyncs; history preserved in %s\n",
			st.Appended, st.Segments, st.Fsyncs, *journalDir)
	}
	return nil
}
