// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout — the format the repo's
// BENCH_PR5.json perf-trajectory files use. It keeps every -benchmem
// column and any custom b.ReportMetric metrics (events/sec,
// alerts/sec, ...), so successive PRs can diff throughput and
// allocs/op mechanically.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, parsed. The -benchmem columns are
// always emitted — 0 allocs/op is a result, not an absence.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"nsPerOp"`
	BytesPerOp float64            `json:"bytesPerOp"`
	AllocsOp   float64            `json:"allocsPerOp"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the output document.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads go-test bench output: header key:value lines, then one
// line per benchmark result.
func parse(r io.Reader) (Doc, error) {
	var doc Doc
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseLine(line)
			if ok {
				doc.Benchmarks = append(doc.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	if len(doc.Benchmarks) == 0 {
		return doc, fmt.Errorf("no benchmark lines found on stdin")
	}
	return doc, nil
}

// parseLine parses one result line:
//
//	BenchmarkX/sub-8   1234   987 ns/op   12 B/op   3 allocs/op   456 events/sec
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters}
	// The rest come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}
