package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: locheat
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkClusterForward/bin/batch-256   260000   3029 ns/op   330169 events/sec   551 B/op   2 allocs/op
BenchmarkAlertJournalAppend/v2bin/fsync-1024   494162   1436 ns/op   696459 alerts/sec   410 B/op   0 allocs/op
PASS
ok   locheat   6.5s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "locheat" {
		t.Fatalf("header: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(doc.Benchmarks))
	}
	fwd := doc.Benchmarks[0]
	if fwd.Name != "BenchmarkClusterForward/bin/batch-256" || fwd.Iterations != 260000 {
		t.Fatalf("first result: %+v", fwd)
	}
	if fwd.NsPerOp != 3029 || fwd.BytesPerOp != 551 || fwd.AllocsOp != 2 {
		t.Fatalf("std columns: %+v", fwd)
	}
	if fwd.Metrics["events/sec"] != 330169 {
		t.Fatalf("custom metric: %+v", fwd.Metrics)
	}
	if doc.Benchmarks[1].AllocsOp != 0 || doc.Benchmarks[1].Metrics["alerts/sec"] != 696459 {
		t.Fatalf("second result: %+v", doc.Benchmarks[1])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}
