// Command loadgen replays a synthetic world's check-in traffic against
// a live lbsnd cluster at a target rate, mixing ground-truth-labelled
// attack cohorts into the benign stream, and emits a structured JSON
// report: sustained throughput, detection-latency quantiles scraped
// from /metrics, drop/shed/quarantine accounting, per-cohort detection
// recall, and the invariant violations the CI soak gate fails on.
//
// Usage:
//
//	loadgen -targets http://n1:8080,http://n2:8080 -api-key KEY \
//	        [-users 100000] [-seed 42] [-rate 100] [-duration 60s] \
//	        [-workers 32] [-attack-users 8] [-time-scale 600] \
//	        [-max-p99 50ms] [-drain-timeout 15s] [-recall-probes 25] \
//	        [-out report.json] [-fail-on-violations] [-require-full-recall]
//
// The report's membership section accounts for cluster elasticity
// observed during the run: live-member gauge edges per target, traffic
// sent while the ring was changing, targets that died mid-run, and
// post failovers. -require-full-recall adds the chaos-drill gate: any
// probed attacker left undetected after the run is a violation.
//
// The cluster must have been started with the same -users and -seed:
// the harness derives every user/venue ID and ground-truth class from
// its own copy of the world and never registers anything.
//
// Exit status: 0 on a clean run; 1 on a harness error; 2 when
// -fail-on-violations is set and the report lists violations.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"locheat/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	targets := fs.String("targets", "http://127.0.0.1:8080", "comma-separated cluster node base URLs")
	apiKey := fs.String("api-key", "", "developer API key (the cluster's -api-key)")
	users := fs.Int("users", 100000, "world scale; must match the cluster's -users")
	seed := fs.Int64("seed", 42, "world seed; must match the cluster's -seed")
	rate := fs.Float64("rate", 100, "benign target check-ins per second (open loop)")
	duration := fs.Duration("duration", 60*time.Second, "traffic window")
	workers := fs.Int("workers", 32, "benign posting workers")
	attackUsers := fs.Int("attack-users", 8, "attackers per cohort (mayor-campaign, virtual-tour, spoof-jump)")
	timeScale := fs.Float64("time-scale", 600, "attack time compression: virtual seconds per wall second")
	maxP99 := fs.Duration("max-p99", 50*time.Millisecond, "detection-latency p99 gate")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "post-traffic wait for cluster queues to empty")
	recallProbes := fs.Int("recall-probes", 25, "max users probed per cohort when scoring recall")
	out := fs.String("out", "", "write the JSON report here ('-' or empty = stdout)")
	failOnViolations := fs.Bool("fail-on-violations", false, "exit 2 when the report lists violations (the CI soak gate)")
	requireFullRecall := fs.Bool("require-full-recall", false, "violation when any probed attacker goes undetected (the chaos-drill gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := loadgen.Config{
		Targets:      splitTargets(*targets),
		APIKey:       *apiKey,
		Users:        *users,
		Seed:         *seed,
		Rate:         *rate,
		Duration:     *duration,
		Workers:      *workers,
		AttackUsers:  *attackUsers,
		TimeScale:    *timeScale,
		MaxP99:       *maxP99,
		DrainTimeout: *drainTimeout,
		RecallProbes: *recallProbes,

		RequireFullRecall: *requireFullRecall,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
		},
	}
	runner, err := loadgen.New(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := runner.Run(ctx)
	if rep == nil {
		return err
	}

	w := os.Stdout
	if *out != "" && *out != "-" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		w = f
	}
	if werr := rep.WriteJSON(w); werr != nil {
		return werr
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d sent at %.0f ev/s sustained; detection p99 %.1fms over %d events; %d violation(s)\n",
		rep.Sent, rep.SustainedRate, rep.DetectionP99*1000, int(rep.DetectionN), len(rep.Violations))
	if m := rep.Membership; m.RingChanges > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: membership: %d ring change(s), %d event(s) in flight during changes, %d failover(s), %d target(s) down\n",
			m.RingChanges, m.SentDuringChange, m.Failovers, len(m.DownTargets))
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(os.Stderr, "loadgen: VIOLATION [%s] %s\n", v.Kind, v.Detail)
	}
	if err != nil {
		return err
	}
	if *failOnViolations && len(rep.Violations) > 0 {
		os.Exit(2)
	}
	return nil
}

func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}
