# Developer entry points. CI runs the same targets.

GO ?= go

# The perf-trajectory benchmarks: the byte-moving hot paths the binary
# codec PR (PR 5) committed to tracking, the telemetry overhead benches
# the observability PR (PR 6) added, the batched hot-path benches PR 7
# added (PublishBatch pipeline, journal AppendBatch), the tracing
# overhead benches PR 8 added (traced pipeline + traced forward hop),
# and the admission-control overhead bench PR 9 added (the per-request
# cost of sitting on the API ingest hot path).
# `make bench` runs them with allocation accounting and snapshots the
# parsed results to $(BENCH_OUT); `make bench-diff` then gates the
# snapshot against the previous PR's committed baseline, failing on a
# >15% throughput drop in any hot-path row.
BENCH_PATTERN := BenchmarkStreamPipelineBatch|BenchmarkClusterForward|BenchmarkReplicaShip|BenchmarkAlertJournalAppend|BenchmarkObs|BenchmarkTraceOverhead|BenchmarkAdmissionOverhead
BENCH_OUT     := BENCH_PR9.json
BENCH_BASE    := BENCH_PR8.json
# Rows eligible to FAIL bench-diff: the CPU/codec-bound hot paths where
# a 15% throughput drop means a code regression. Rows bound by an fsync
# per record or an HTTP round trip per event swing ±30% run to run on
# the reference box, so they print as (info) instead of gating.
# TraceOverhead/pipeline/(off|sample-0) gate too: they pin the
# tracing-compiled-in-but-idle contract — tracing at rate 0 may not tax
# the batched hot path. AdmissionOverhead/unsaturated gates the
# admission fast path (one fingerprint probe + one atomic load per
# check-in); the nil and engaged rows are informational. sample-1 and
# the HTTP-bound forward rows are informational.
BENCH_GATE    := BenchmarkStreamPipelineBatch|BenchmarkAlertJournalAppendBatch|BenchmarkClusterForward/bin/batch-(32|256)|BenchmarkReplicaShip/bin/batch-1024|BenchmarkTraceOverhead/pipeline/(off|sample-0)|BenchmarkAdmissionOverhead/unsaturated

.PHONY: build test test-race bench bench-diff fmt vet soak

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

bench:
	# No pipe: a failing benchmark run must fail the target, not hand
	# benchjson a truncated stream behind tee's exit status.
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime 2s . > bench.out || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson < bench.out > $(BENCH_OUT)
	@rm -f bench.out
	@echo "wrote $(BENCH_OUT)"

# Mechanical perf gate: compare the fresh snapshot against the previous
# PR's committed baseline. Rows are matched by name; only rows with a
# */sec throughput metric AND a $(BENCH_GATE) name gate (micro-bench
# ns/op and physics-bound rows are informational).
bench-diff:
	$(GO) run ./cmd/benchdiff -max-regress 15 -gate '$(BENCH_GATE)' $(BENCH_BASE) $(BENCH_OUT)

# Standing perf gate: boot a real 3-node cluster and soak it with
# cmd/loadgen — benign traffic paced inside the detection envelope plus
# compressed attack cohorts — failing on any report violation (critical
# shed, detection p99 breach, silent drops, drain timeout). Scale with
# SOAK_USERS / SOAK_DURATION / SOAK_RATE; CI runs the 50k-user minute.
# `make soak SOAK_CHAOS=1` runs the elastic drill instead: mid-soak the
# script joins a 4th node via gossip, kill -9s n2, partitions and heals
# n3, and the gate additionally requires full post-rebalance recall.
SOAK_CHAOS ?= 0
export SOAK_CHAOS
soak:
	sh scripts/soak.sh
