# Developer entry points. CI runs the same targets.

GO ?= go

# The perf-trajectory benchmarks: the three byte-moving hot paths the
# binary codec PR (PR 5) committed to tracking, plus the telemetry
# overhead benches the observability PR (PR 6) added (obs on vs off on
# the journal and pipeline hot paths, and the /metrics scrape cost).
# `make bench` runs them with allocation accounting and snapshots the
# parsed results to BENCH_PR6.json so successive PRs can diff
# throughput mechanically against BENCH_PR5.json.
BENCH_PATTERN := BenchmarkClusterForward|BenchmarkReplicaShip|BenchmarkAlertJournalAppend|BenchmarkObs
BENCH_OUT     := BENCH_PR6.json

.PHONY: build test test-race bench fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

bench:
	# No pipe: a failing benchmark run must fail the target, not hand
	# benchjson a truncated stream behind tee's exit status.
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime 1s . > bench.out || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	$(GO) run ./cmd/benchjson < bench.out > $(BENCH_OUT)
	@rm -f bench.out
	@echo "wrote $(BENCH_OUT)"
